//! Second step of the heuristic, part one: discretizing the fractional CU
//! counts `N̂_k` into integers `N_k` with a small branch-and-bound
//! (Sec. 3.2.2 of the paper).
//!
//! Two subproblems are generated per fractional variable — `N_k ≤ ⌊N̂_k⌋` and
//! `N_k ≥ ⌈N̂_k⌉` — and the search is pruned whenever a subproblem's relaxed
//! `ÎI` is no better than the best integer solution found so far. Node
//! relaxations reuse the bounded relaxation in [`crate::gp_step`]; the fast
//! bisection backend is the default engine (the GP backend gives identical
//! results and is exercised in tests and by the ablation bench).

use crate::gp_step::{self, RelaxationBackend};
use crate::problem::AllocationProblem;
use crate::realloc::ReallocContext;
use crate::solver::{check_deadline, Deadline};
use crate::AllocError;

/// Options for the discretization search.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizeOptions {
    /// Relaxation engine used at every node.
    pub backend: RelaxationBackend,
    /// Tolerance within which a fractional count is taken as integral.
    pub integer_tolerance: f64,
    /// Safety cap on explored nodes (the tree is tiny in practice because
    /// only kernels with fractional counts are branched on).
    pub max_nodes: usize,
}

impl Default for DiscretizeOptions {
    fn default() -> Self {
        DiscretizeOptions {
            backend: RelaxationBackend::Bisection,
            integer_tolerance: 1e-6,
            max_nodes: 20_000,
        }
    }
}

/// Result of the discretization.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteCounts {
    /// Integer CU count `N_k` per kernel.
    pub cu_counts: Vec<u32>,
    /// Integer per-group CU counts `N_{k,g}`, kernel-major
    /// (`group_cu_counts[k][g]`), obtained by largest-remainder rounding of
    /// the winning node's fractional group water-filling so each row sums to
    /// `cu_counts[k]`. On a single-group platform every row is `[N_k]`. The
    /// split is advisory — the greedy allocator performs the real per-FPGA
    /// placement — but seeds reporting and placement heuristics.
    pub group_cu_counts: Vec<Vec<u32>>,
    /// Initiation interval implied by the integer counts, in milliseconds.
    pub initiation_interval_ms: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Discretizes the relaxed counts for `problem` cold. Warm-started
/// (incumbent-seeded) discretization goes through
/// [`crate::solver::SolveRequest`], which plumbs the request's counts hint
/// into the seeded branch-and-bound below.
///
/// # Errors
///
/// Propagates relaxation errors; returns [`AllocError::Infeasible`] if no
/// integer assignment satisfies the aggregated budgets.
pub fn solve(
    problem: &AllocationProblem,
    options: &DiscretizeOptions,
) -> Result<DiscreteCounts, AllocError> {
    solve_seeded_inner(problem, options, None, None, None).map(|(counts, _)| counts)
}

/// [`solve`] with an optional incumbent seeding the branch-and-bound, an
/// optional [`Deadline`] checked at every node, and an optional node budget
/// combined with [`DiscretizeOptions::max_nodes`] by minimum. Returns the
/// counts plus whether the incumbent was accepted.
///
/// A valid incumbent (right length, every count ≥ 1, within the per-kernel
/// caps and the aggregated budgets) becomes the initial best solution, so
/// subtrees that cannot beat it are pruned immediately; an invalid one is
/// silently ignored. Seeding never changes the optimal `II` — only how much
/// of the tree is explored to prove it. Since `best` is replaced only on
/// strict improvement, the incumbent wins II ties: a seeded search may
/// return the incumbent's counts where an unseeded one would find another
/// equally-optimal vector.
///
/// # Errors
///
/// Same contract as [`solve`], plus [`AllocError::DeadlineExceeded`] when
/// the deadline expires mid-search.
pub(crate) fn solve_seeded_inner(
    problem: &AllocationProblem,
    options: &DiscretizeOptions,
    incumbent: Option<&[u32]>,
    deadline: Option<&Deadline>,
    node_budget: Option<usize>,
) -> Result<(DiscreteCounts, bool), AllocError> {
    let root_bounds: Vec<(f64, f64)> = (0..problem.num_kernels())
        .map(|k| (1.0, problem.max_total_cus(k).max(1) as f64))
        .collect();
    let max_nodes = node_budget.map_or(options.max_nodes, |cap| cap.min(options.max_nodes));
    let realloc = ReallocContext::from_problem(problem)?;

    // `best` carries (counts, group split, II, penalized score). Without an
    // active reallocation spec the score equals the II and the search is
    // byte-identical to the static one.
    type BestNode = (Vec<u32>, Vec<Vec<u32>>, f64, f64);
    let mut best: Option<BestNode> = None;
    // Seed 1: the reallocation incumbent itself — zero movement by
    // construction, so its score is exactly its II.
    if let Some(ctx) = &realloc {
        let totals = ctx.inc_totals.clone();
        if incumbent_is_valid(problem, &totals) {
            let ii = implied_ii(problem, &totals);
            best = Some((totals, ctx.inc_groups.clone(), ii, ii));
        }
    }
    // Seed 2: the warm-start counts hint, kept only if it beats seed 1.
    let mut incumbent_used = false;
    if let Some(counts) = incumbent.filter(|counts| incumbent_is_valid(problem, counts)) {
        let groups = group_split_for(problem, counts, realloc.as_ref());
        let ii = implied_ii(problem, counts);
        let score = ii
            + realloc
                .as_ref()
                .map_or(0.0, |ctx| ctx.penalty_of_groups(&groups));
        let within_bound = !realloc
            .as_ref()
            .is_some_and(|ctx| ctx.exceeds_bound(&groups));
        if within_bound {
            incumbent_used = true;
            if best.as_ref().map_or(true, |(_, _, _, b)| score < *b) {
                best = Some((counts.to_vec(), groups, ii, score));
            }
        }
    }
    let mut nodes = 0usize;
    let mut stack = vec![root_bounds];

    while let Some(bounds) = stack.pop() {
        if nodes >= max_nodes {
            break;
        }
        check_deadline(deadline, "discretization")?;
        nodes += 1;
        let relaxation =
            match gp_step::relax_bounded_hinted(problem, &bounds, options.backend, None, None) {
                Ok((r, _)) => r,
                Err(AllocError::Infeasible(_)) => continue,
                Err(other) => return Err(other),
            };
        if let Some((_, _, _, best_score)) = &best {
            // Prune: the relaxed II is a lower bound on any integer solution
            // in this subtree, and the migration penalty is non-negative, so
            // it also lower-bounds the penalized score. A small relative
            // margin keeps the pruning sound when the GP backend returns its
            // optimum only to solver tolerance.
            if relaxation.initiation_interval_ms >= *best_score * (1.0 + 1e-7) - 1e-12 {
                continue;
            }
        }
        // Find the most fractional count.
        let fractional = relaxation
            .cu_counts
            .iter()
            .enumerate()
            .filter_map(|(k, &n)| {
                let frac = (n - n.round()).abs();
                if frac > options.integer_tolerance {
                    Some((k, n, (n - n.floor() - 0.5).abs()))
                } else {
                    None
                }
            })
            .min_by(|a, b| a.2.total_cmp(&b.2));

        match fractional {
            None => {
                // Integral: the exact II of the rounded counts, with the
                // node's fractional group water-filling rounded per group —
                // breaking remainder ties toward the incumbent when a
                // reallocation spec is active, so rounding never invents
                // movement the fractional split did not have.
                let counts: Vec<u32> = relaxation
                    .cu_counts
                    .iter()
                    .map(|&n| n.round().max(1.0) as u32)
                    .collect();
                let ii = implied_ii(problem, &counts);
                let groups: Vec<Vec<u32>> = counts
                    .iter()
                    .enumerate()
                    .map(|(k, &total)| {
                        let fracs = &relaxation.group_cu_counts[k];
                        match &realloc {
                            Some(ctx) => round_group_split_toward(fracs, total, &ctx.inc_groups[k]),
                            None => round_group_split(fracs, total),
                        }
                    })
                    .collect();
                let score = ii
                    + realloc
                        .as_ref()
                        .map_or(0.0, |ctx| ctx.penalty_of_groups(&groups));
                let within_bound = !realloc
                    .as_ref()
                    .is_some_and(|ctx| ctx.exceeds_bound(&groups));
                if within_bound && best.as_ref().map_or(true, |(_, _, _, b)| score < *b) {
                    best = Some((counts, groups, ii, score));
                }
            }
            Some((k, value, _)) => {
                let (lo, hi) = bounds[k];
                let mut left = bounds.clone();
                left[k] = (lo, value.floor());
                let mut right = bounds.clone();
                right[k] = (value.ceil(), hi);
                if left[k].0 <= left[k].1 {
                    stack.push(left);
                }
                if right[k].0 <= right[k].1 {
                    stack.push(right);
                }
            }
        }
    }

    match best {
        Some((cu_counts, group_cu_counts, initiation_interval_ms, _)) => Ok((
            DiscreteCounts {
                cu_counts,
                group_cu_counts,
                initiation_interval_ms,
                nodes_explored: nodes,
            },
            incumbent_used,
        )),
        None => Err(AllocError::Infeasible(
            "no integer CU assignment satisfies the aggregated budgets".into(),
        )),
    }
}

/// Largest-remainder rounding of one kernel's fractional group split so the
/// integers sum exactly to `total`. Ties go to the lower group index, keeping
/// the rounding deterministic.
fn round_group_split(fracs: &[f64], total: u32) -> Vec<u32> {
    let mut counts: Vec<u32> = fracs.iter().map(|&x| x.max(0.0).floor() as u32).collect();
    let mut assigned: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    // Float drift can leave the floors above the target; shave the largest.
    while assigned > u64::from(total) {
        let g = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(g, _)| g)
            .expect("a split has at least one group");
        counts[g] -= 1;
        assigned -= 1;
    }
    let mut remainders: Vec<(usize, f64)> = fracs
        .iter()
        .enumerate()
        .map(|(g, &x)| (g, x.max(0.0) - x.max(0.0).floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut leftover = u64::from(total) - assigned;
    'distribute: while leftover > 0 {
        for (g, _) in &remainders {
            counts[*g] += 1;
            leftover -= 1;
            if leftover == 0 {
                break 'distribute;
            }
        }
    }
    counts
}

/// [`round_group_split`] that breaks remainder (and shaving) ties toward the
/// incumbent row: among groups with equal claim, ones still below their
/// incumbent count receive leftover CUs first and surrender excess CUs last.
/// With identical fractional input this never moves more CUs than the
/// incumbent-agnostic rounding (property-tested below), and with no ties it
/// produces byte-identical output.
pub(crate) fn round_group_split_toward(fracs: &[f64], total: u32, inc: &[u32]) -> Vec<u32> {
    let mut counts: Vec<u32> = fracs.iter().map(|&x| x.max(0.0).floor() as u32).collect();
    let mut assigned: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    // Float drift above the target: shave the largest group, preferring —
    // among equally large ones — a group already above its incumbent count
    // (shaving there reduces movement).
    while assigned > u64::from(total) {
        let g = counts
            .iter()
            .enumerate()
            .max_by(|&(ga, &ca), &(gb, &cb)| {
                let surplus_a = ca > inc.get(ga).copied().unwrap_or(0);
                let surplus_b = cb > inc.get(gb).copied().unwrap_or(0);
                ca.cmp(&cb)
                    .then(surplus_a.cmp(&surplus_b))
                    .then(gb.cmp(&ga))
            })
            .map(|(g, _)| g)
            .expect("a split has at least one group");
        counts[g] -= 1;
        assigned -= 1;
    }
    let mut remainders: Vec<(usize, f64)> = fracs
        .iter()
        .enumerate()
        .map(|(g, &x)| (g, x.max(0.0) - x.max(0.0).floor()))
        .collect();
    remainders.sort_by(|a, b| {
        let deficit =
            |&(g, _): &(usize, f64)| u32::from(counts[g] < inc.get(g).copied().unwrap_or(0));
        b.1.total_cmp(&a.1)
            .then_with(|| deficit(b).cmp(&deficit(a)))
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut leftover = u64::from(total) - assigned;
    'distribute: while leftover > 0 {
        for (g, _) in &remainders {
            counts[*g] += 1;
            leftover -= 1;
            if leftover == 0 {
                break 'distribute;
            }
        }
    }
    counts
}

/// Group split for a warm-start incumbent: water-fill the integer totals
/// fractionally across groups, then round per group (toward the reallocation
/// incumbent when one is active).
fn group_split_for(
    problem: &AllocationProblem,
    counts: &[u32],
    realloc: Option<&ReallocContext>,
) -> Vec<Vec<u32>> {
    let totals: Vec<f64> = counts.iter().map(|&n| f64::from(n)).collect();
    let fractional = gp_step::distribute_over_groups(problem, &totals, &mut 0)
        .expect("the incumbent water-filling LP stays within its pivot budget")
        .expect("a valid incumbent passed the aggregated budget check");
    counts
        .iter()
        .enumerate()
        .zip(&fractional)
        .map(|((k, &total), fracs)| match realloc {
            Some(ctx) => round_group_split_toward(fracs, total, &ctx.inc_groups[k]),
            None => round_group_split(fracs, total),
        })
        .collect()
}

/// A warm-start incumbent is usable only if it is itself a feasible point of
/// the aggregated problem: right length, at least one CU everywhere, within
/// the per-kernel caps and the platform-wide budgets.
fn incumbent_is_valid(problem: &AllocationProblem, counts: &[u32]) -> bool {
    counts.len() == problem.num_kernels()
        && counts
            .iter()
            .enumerate()
            .all(|(k, &n)| n >= 1 && n <= problem.max_total_cus(k).max(1))
        // A pivot-budget failure counts as "not usable" rather than an error:
        // the solve then simply proceeds without the incumbent.
        && gp_step::budgets_allow(
            problem,
            &counts.iter().map(|&n| n as f64).collect::<Vec<_>>(),
            &mut 0,
        )
        .unwrap_or(false)
}

/// `max_k WCET_k / N_k` for integer counts.
fn implied_ii(problem: &AllocationProblem, counts: &[u32]) -> f64 {
    problem
        .kernels()
        .iter()
        .zip(counts)
        .map(|(kernel, &n)| kernel.wcet_ms() / n.max(1) as f64)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GoalWeights, Kernel};
    use mfa_cnn::paper_data;
    use mfa_platform::{MultiFpgaPlatform, ResourceBudget, ResourceVec};
    use proptest::prelude::*;

    fn toy_problem(budget: f64) -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.01, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.01, 0.3), 0.01).unwrap(),
            ])
            // Two FPGAs (f1.4xlarge), so the aggregated DSP budget is 2·budget.
            .platform(MultiFpgaPlatform::aws_f1_4xlarge())
            .budget(ResourceBudget::uniform(budget))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    #[test]
    fn integer_counts_beat_naive_rounding_down() {
        // Continuous optimum (budget 1.0): N_a = 1.43, N_b = 2.38, II = 2.1.
        // Best integer point under 0.2·N_a + 0.3·N_b ≤ 2 (two FPGAs):
        // enumerate: (2,4): 0.4+1.2=1.6 ok → II = max(1.5, 1.25) = 1.5;
        // (3,4): 0.6+1.2=1.8 ok → II = max(1.0,1.25) = 1.25;
        // (3,5): 0.6+1.5=2.1 > 2 no; (4,4): 0.8+1.2=2.0 ok → II = 1.25;
        // (4,5): 2.3 no. So optimum II = 1.25.
        let p = toy_problem(1.0);
        let d = solve(&p, &DiscretizeOptions::default()).unwrap();
        assert!(
            (d.initiation_interval_ms - 1.25).abs() < 1e-9,
            "II = {}",
            d.initiation_interval_ms
        );
        assert!(d.nodes_explored >= 1);
    }

    #[test]
    fn gp_and_bisection_backends_agree() {
        let p = toy_problem(0.8);
        let bis = solve(&p, &DiscretizeOptions::default()).unwrap();
        let gp = solve(
            &p,
            &DiscretizeOptions {
                backend: RelaxationBackend::GeometricProgram,
                ..DiscretizeOptions::default()
            },
        )
        .unwrap();
        // The GP backend solves each node only to interior-point tolerance, so
        // allow a small relative slack when comparing against bisection.
        let tol = 1e-4 * bis.initiation_interval_ms;
        assert!(
            (bis.initiation_interval_ms - gp.initiation_interval_ms).abs() < tol,
            "bisection {} vs GP {}",
            bis.initiation_interval_ms,
            gp.initiation_interval_ms
        );
    }

    #[test]
    fn every_kernel_keeps_at_least_one_cu() {
        let app = paper_data::alexnet_16bit();
        let p = AllocationProblem::from_application(&app, 2, 0.60, GoalWeights::ii_only()).unwrap();
        let d = solve(&p, &DiscretizeOptions::default()).unwrap();
        assert_eq!(d.cu_counts.len(), 8);
        assert!(d.cu_counts.iter().all(|&n| n >= 1));
        // Discretized II can only be ≥ the continuous relaxation.
        let relaxed = gp_step::solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(d.initiation_interval_ms >= relaxed.initiation_interval_ms - 1e-9);
    }

    #[test]
    fn seeding_preserves_the_optimum_and_never_explores_more() {
        let p = toy_problem(1.0);
        let cold = solve(&p, &DiscretizeOptions::default()).unwrap();
        let (warm, used) = solve_seeded_inner(
            &p,
            &DiscretizeOptions::default(),
            Some(&cold.cu_counts),
            None,
            None,
        )
        .unwrap();
        assert!(used);
        assert!(
            (warm.initiation_interval_ms - cold.initiation_interval_ms).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.initiation_interval_ms,
            cold.initiation_interval_ms
        );
        assert!(warm.nodes_explored <= cold.nodes_explored);
    }

    #[test]
    fn invalid_incumbents_are_ignored() {
        let p = toy_problem(1.0);
        let cold = solve(&p, &DiscretizeOptions::default()).unwrap();
        for bad in [vec![0u32, 4], vec![200, 200], vec![1u32]] {
            let (seeded, used) =
                solve_seeded_inner(&p, &DiscretizeOptions::default(), Some(&bad), None, None)
                    .unwrap();
            assert!(!used);
            assert!((seeded.initiation_interval_ms - cold.initiation_interval_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn round_group_split_is_exact_and_deterministic() {
        assert_eq!(round_group_split(&[2.6, 1.4], 4), vec![3, 1]);
        assert_eq!(round_group_split(&[1.5, 1.5], 3), vec![2, 1]); // tie → lower index
        assert_eq!(round_group_split(&[3.0], 3), vec![3]);
        assert_eq!(round_group_split(&[0.0, 5.0], 5), vec![0, 5]);
        // Float drift above the target is shaved from the largest group.
        assert_eq!(round_group_split(&[3.000000001, 1.0], 4), vec![3, 1]);
        let split = round_group_split(&[2.2, 1.9, 0.9], 5);
        assert_eq!(split.iter().sum::<u32>(), 5);
    }

    #[test]
    fn toward_rounding_breaks_ties_to_the_incumbent() {
        // Equal remainders: the agnostic rounding goes to the lower index,
        // the incumbent-aware one to the group still below its incumbent.
        assert_eq!(round_group_split(&[1.5, 1.5], 3), vec![2, 1]);
        assert_eq!(
            round_group_split_toward(&[1.5, 1.5], 3, &[1, 2]),
            vec![1, 2]
        );
        // Without ties the two roundings are byte-identical.
        assert_eq!(
            round_group_split_toward(&[2.6, 1.4], 4, &[0, 4]),
            vec![3, 1]
        );
        // The row still sums exactly to the total.
        let split = round_group_split_toward(&[2.2, 1.9, 0.9], 5, &[5, 0, 0]);
        assert_eq!(split.iter().sum::<u32>(), 5);
        // Float drift above the target is shaved from a surplus group first.
        assert_eq!(
            round_group_split_toward(&[2.000000001, 2.0], 3, &[2, 0]),
            vec![2, 1]
        );
    }

    #[test]
    fn migration_weight_trades_movement_for_ii() {
        use crate::realloc::{Incumbent, MigrationCost, ReallocationSpec};
        let incumbent =
            Incumbent::new(vec![("a".to_string(), vec![2]), ("b".to_string(), vec![4])]).unwrap();
        // A heavy migration weight keeps the incumbent counts (II 1.5) even
        // though II 1.25 is reachable by moving one CU.
        let heavy = toy_problem(1.0).with_reallocation(Some(ReallocationSpec::new(
            incumbent.clone(),
            MigrationCost::new(1.0).unwrap(),
        )));
        let d = solve(&heavy, &DiscretizeOptions::default()).unwrap();
        assert_eq!(d.cu_counts, vec![2, 4]);
        assert!((d.initiation_interval_ms - 1.5).abs() < 1e-9);
        // A light weight pays the move and recovers the static optimum.
        let light = toy_problem(1.0).with_reallocation(Some(ReallocationSpec::new(
            incumbent,
            MigrationCost::new(0.01).unwrap(),
        )));
        let d = solve(&light, &DiscretizeOptions::default()).unwrap();
        assert!((d.initiation_interval_ms - 1.25).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_discretization_rounds_per_group() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.01, 0.2), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.01, 0.3), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "1×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 1),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.8))
            .build()
            .unwrap();
        let d = solve(&p, &DiscretizeOptions::default()).unwrap();
        assert_eq!(d.group_cu_counts.len(), 2);
        for (k, row) in d.group_cu_counts.iter().enumerate() {
            assert_eq!(row.len(), 2);
            assert_eq!(row.iter().sum::<u32>(), d.cu_counts[k]);
        }
        // The discretized II is still lower-bounded by the relaxation.
        let relaxed = gp_step::solve(&p, RelaxationBackend::Bisection).unwrap();
        assert!(d.initiation_interval_ms >= relaxed.initiation_interval_ms - 1e-9);
        // And the heterogeneous pair beats either single FPGA alone.
        let single = AllocationProblem::builder()
            .kernels(p.kernels().to_vec())
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.8))
            .build()
            .unwrap();
        let single_d = solve(&single, &DiscretizeOptions::default()).unwrap();
        assert!(d.initiation_interval_ms <= single_d.initiation_interval_ms + 1e-9);
    }

    #[test]
    fn homogeneous_group_counts_are_single_column() {
        let p = toy_problem(1.0);
        let d = solve(&p, &DiscretizeOptions::default()).unwrap();
        for (k, row) in d.group_cu_counts.iter().enumerate() {
            assert_eq!(row, &vec![d.cu_counts[k]]);
        }
        // Warm-started solves fill the split for the incumbent too.
        let (warm, _) = solve_seeded_inner(
            &p,
            &DiscretizeOptions::default(),
            Some(&d.cu_counts),
            None,
            None,
        )
        .unwrap();
        for (k, row) in warm.group_cu_counts.iter().enumerate() {
            assert_eq!(row.iter().sum::<u32>(), warm.cu_counts[k]);
        }
    }

    #[test]
    fn infeasible_problems_are_reported() {
        // Two kernels that each need more than half of the single FPGA's DSPs
        // can coexist only if the budget allows both lower bounds; shrink the
        // budget below one kernel's need.
        let p = AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("a", 3.0, ResourceVec::bram_dsp(0.01, 0.4), 0.01).unwrap(),
                Kernel::new("b", 5.0, ResourceVec::bram_dsp(0.01, 0.4), 0.01).unwrap(),
            ])
            .platform(MultiFpgaPlatform::aws_f1_2xlarge())
            .budget(ResourceBudget::uniform(0.3))
            .build()
            .unwrap();
        assert!(matches!(
            solve(&p, &DiscretizeOptions::default()),
            Err(AllocError::Infeasible(_))
        ));
    }

    proptest! {
        /// The discretized counts always satisfy the aggregated budgets and the
        /// implied II is never better than the continuous relaxation.
        #[test]
        fn discretization_is_sound(
            wcets in proptest::collection::vec(1.0..20.0f64, 2..6),
            dsp in 0.05..0.25f64,
            budget in 0.5..1.0f64
        ) {
            let kernels: Vec<Kernel> = wcets
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    Kernel::new(format!("k{i}"), w, ResourceVec::bram_dsp(0.02, dsp), 0.01).unwrap()
                })
                .collect();
            let p = AllocationProblem::builder()
                .kernels(kernels)
                .platform(MultiFpgaPlatform::aws_f1_4xlarge())
                .budget(ResourceBudget::uniform(budget))
                .build()
                .unwrap();
            // Random instances may be infeasible (one CU per kernel already
            // exceeding the aggregated budget); those are not interesting here.
            let relaxed = match gp_step::solve(&p, RelaxationBackend::Bisection) {
                Ok(r) => r,
                Err(AllocError::Infeasible(_)) => return Ok(()),
                Err(other) => panic!("unexpected error: {other}"),
            };
            let d = solve(&p, &DiscretizeOptions::default()).unwrap();
            prop_assert!(d.initiation_interval_ms >= relaxed.initiation_interval_ms - 1e-9);
            // Aggregated budget check.
            let f = p.num_fpgas() as f64;
            let total_dsp: f64 = d
                .cu_counts
                .iter()
                .zip(p.kernels())
                .map(|(&n, k)| n as f64 * k.resources().dsp)
                .sum();
            prop_assert!(total_dsp <= f * budget + 1e-6);
        }

        /// Satellite invariant: breaking rounding ties toward the incumbent
        /// never moves more CUs than the incumbent-agnostic rounding of the
        /// same fractional split (equal relaxed totals by construction).
        #[test]
        fn toward_rounding_never_moves_more(
            fracs in proptest::collection::vec(0.0..6.0f64, 1..5),
            inc_raw in proptest::collection::vec(0usize..6, 5)
        ) {
            let total = fracs.iter().sum::<f64>().round() as u32;
            let inc: Vec<u32> = inc_raw[..fracs.len()].iter().map(|&i| i as u32).collect();
            let inc = &inc[..];
            let agnostic = round_group_split(&fracs, total);
            let toward = round_group_split_toward(&fracs, total, inc);
            prop_assert_eq!(toward.iter().sum::<u32>(), total);
            prop_assert_eq!(agnostic.iter().sum::<u32>(), total);
            let moved = |counts: &[u32]| -> u32 {
                counts.iter().zip(inc).map(|(&n, &i)| n.saturating_sub(i)).sum()
            };
            prop_assert!(
                moved(&toward) <= moved(&agnostic),
                "toward {:?} moves more than agnostic {:?} for inc {:?}",
                toward, agnostic, inc
            );
        }
    }
}
