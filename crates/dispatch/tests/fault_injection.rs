//! Fault injection: workers crash, hang, or corrupt frames mid-sweep, and
//! the dispatcher must reassign their leases and still produce output
//! byte-identical to the fault-free in-process run of the same grid and
//! chunk decomposition (diagnostic columns included).
//!
//! Faults are injected deterministically through the worker binary's
//! `--fail-after`/`--garbage-after`/`--hang-after` flags (see
//! [`mfa_dispatch::FaultPlan`]) rather than by racing `kill` against the
//! sweep, so every run exercises the same reassignment path.

mod common;

use std::time::Duration;

use common::{assert_sharded_matches_local, gp_figures, worker_with_args};
use mfa_dispatch::{run_sweep_sharded, DispatchError, DispatchOptions};

/// chunk 1 → 6 units on the Fig. 2 grid: enough leases that a worker dying
/// mid-sweep always leaves work to reassign.
fn small_chunks() -> DispatchOptions {
    DispatchOptions {
        chunk_size: 1,
        ..DispatchOptions::default()
    }
}

#[test]
fn a_worker_crash_mid_sweep_is_absorbed() {
    // Worker 0 crashes (hard exit, no reply) when its second unit arrives;
    // its outstanding leases are reassigned to worker 1 and the output must
    // not change by a byte.
    let workers = vec![
        worker_with_args(&["--fail-after", "1"]),
        worker_with_args(&[]),
    ];
    assert_sharded_matches_local(
        &gp_figures()[0],
        &workers,
        &small_chunks(),
        "crash mid-sweep",
    );
}

#[test]
fn an_immediate_crash_is_absorbed() {
    // Worker 0 dies on its very first unit — before contributing anything.
    let workers = vec![
        worker_with_args(&["--fail-after", "0"]),
        worker_with_args(&[]),
    ];
    assert_sharded_matches_local(
        &gp_figures()[0],
        &workers,
        &small_chunks(),
        "immediate crash",
    );
}

#[test]
fn a_truncated_garbage_frame_is_absorbed() {
    // Worker 0 emits a frame cut off mid-write instead of its second
    // result. The dispatcher must condemn the stream (framing after a bad
    // line cannot be trusted), reassign, and keep the bytes identical.
    let workers = vec![
        worker_with_args(&["--garbage-after", "1"]),
        worker_with_args(&[]),
    ];
    assert_sharded_matches_local(&gp_figures()[0], &workers, &small_chunks(), "garbage frame");
}

#[test]
fn a_hung_worker_is_reaped_by_the_lease_timeout() {
    // Worker 0 accepts its second unit and never replies. Only the lease
    // timeout can detect this; the dispatcher kills the worker and
    // reassigns. Generous timeout: the healthy worker's solves must not be
    // misclassified as hangs on a slow CI machine, while the test still
    // finishes quickly once the hang is detected.
    let workers = vec![
        worker_with_args(&["--hang-after", "1"]),
        worker_with_args(&[]),
    ];
    assert_sharded_matches_local(
        &gp_figures()[0],
        &workers,
        &DispatchOptions {
            chunk_size: 1,
            lease_timeout: Some(Duration::from_secs(10)),
            ..DispatchOptions::default()
        },
        "hung worker",
    );
}

#[test]
fn faults_on_every_figure_still_match_the_goldens() {
    // The crash + reassign path across the whole gp figure set.
    let workers = vec![
        worker_with_args(&["--fail-after", "1"]),
        worker_with_args(&[]),
        worker_with_args(&[]),
    ];
    for figure in gp_figures() {
        assert_sharded_matches_local(&figure, &workers, &small_chunks(), "fleet with one crasher");
    }
}

#[test]
fn losing_every_worker_is_an_error_not_a_hang() {
    let workers = vec![
        worker_with_args(&["--fail-after", "0"]),
        worker_with_args(&["--fail-after", "0"]),
    ];
    let err = run_sweep_sharded(&gp_figures()[0].grid, &workers, &small_chunks()).unwrap_err();
    assert!(
        matches!(err, DispatchError::AllWorkersLost { .. }),
        "expected AllWorkersLost, got {err}"
    );
}

#[test]
fn a_unit_that_kills_its_workers_exhausts_its_attempts() {
    // With max_attempts 1, the first crash marks the leased unit as
    // poisoned instead of recycling it — the backstop against a unit that
    // deterministically kills every worker it touches.
    let workers = vec![
        worker_with_args(&["--fail-after", "0"]),
        worker_with_args(&[]),
    ];
    let err = run_sweep_sharded(
        &gp_figures()[0].grid,
        &workers,
        &DispatchOptions {
            chunk_size: 1,
            max_attempts: 1,
            ..DispatchOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, DispatchError::UnitExhausted { attempts: 1, .. }),
        "expected UnitExhausted, got {err}"
    );
}
