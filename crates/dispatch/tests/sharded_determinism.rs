//! Determinism of the multi-process dispatcher: for every worker count,
//! partition, and transport, the merged output must be byte-identical to
//! the committed golden snapshots (which a serial in-process run also
//! reproduces — see `crates/integration/tests/golden_figures.rs`).

mod common;

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

use common::{
    assert_sharded_matches_golden, gp_figures, sharded_solution_bytes, worker_bin, worker_with_args,
};
use mfa_dispatch::{
    run_sweep_sharded, run_sweep_sharded_stored, spawned_workers, DispatchOptions, WorkerSpec,
};
use mfa_explore::{
    constraint_grid, export, run_sweep, run_sweep_stored, zero_chunk_diagnostics, zero_timing,
    CaseSpec, ExecutorOptions, SolverSpec, SweepGrid, SweepStore,
};

#[test]
fn every_worker_count_reproduces_the_golden_bytes() {
    // Worker counts 1..=4 on Fig. 2 (6 units at chunk 1): exercises
    // single-worker, balanced, and more-workers-than-ready-units cases.
    let figure = &gp_figures()[0];
    for workers in 1..=4usize {
        assert_sharded_matches_golden(
            figure,
            &spawned_workers(worker_bin(), workers),
            &DispatchOptions::default(),
            &format!("{workers} workers"),
        );
    }
}

#[test]
fn four_workers_reproduce_every_figure() {
    let workers = spawned_workers(worker_bin(), 4);
    for figure in gp_figures() {
        assert_sharded_matches_golden(&figure, &workers, &DispatchOptions::default(), "4 workers");
    }
}

#[test]
fn partition_choice_does_not_change_the_solution_bytes() {
    // chunk_size 1 yields a different decomposition than the goldens'
    // default of 8, and single-point chunks have no intra-chunk warm-start
    // state; every solution column must still match the default-chunk
    // in-process reference (same reasoning as the chunk-1 test in the
    // integration crate, now across processes). The per-request diagnostics
    // — warm-start provenance, node counts, relaxation-gap ulps — are facts
    // about the partition and are normalized out of the comparison; see
    // `mfa_explore::zero_chunk_diagnostics`.
    let figure = &gp_figures()[0];
    let reference = {
        let mut series = run_sweep(&figure.grid, &ExecutorOptions::default()).unwrap();
        zero_timing(&mut series);
        zero_chunk_diagnostics(&mut series);
        (
            export::series_to_json(&series),
            export::series_to_csv(&series),
        )
    };
    for chunk_size in [1, 2, 64] {
        let sharded = sharded_solution_bytes(
            &figure.grid,
            &spawned_workers(worker_bin(), 3),
            &DispatchOptions {
                chunk_size,
                ..DispatchOptions::default()
            },
        );
        assert_eq!(sharded, reference, "chunk {chunk_size}");
    }
}

#[test]
fn exhausted_point_deadlines_surface_as_skipped_units() {
    // A grid whose every point carries an already-exhausted deadline: under
    // the default lenient skip policy each leased unit completes with all
    // its points skipped — no worker error, no dispatcher error, and the
    // merged output is identical to the serial in-process run (which also
    // skips everything).
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraint_grid(0.60, 0.80, 4).unwrap())
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .point_deadline_seconds(0.0)
        .build()
        .unwrap();
    let sharded = run_sweep_sharded(
        &grid,
        &spawned_workers(worker_bin(), 2),
        &DispatchOptions::default(),
    )
    .unwrap();
    let serial = run_sweep(&grid, &ExecutorOptions::serial()).unwrap();
    assert_eq!(sharded, serial);
    assert_eq!(sharded.len(), 1);
    assert!(
        sharded[0].points.is_empty(),
        "deadline-expired points must be skipped, got {:?}",
        sharded[0].points
    );
}

/// Spawns `sweep-worker --listen 127.0.0.1:0` and returns (child, addr).
fn spawn_tcp_worker() -> (std::process::Child, String) {
    let mut child = Command::new(worker_bin())
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sweep-worker --listen");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_owned();
    (child, addr)
}

#[test]
fn tcp_workers_reproduce_the_golden_bytes() {
    let (mut child_a, addr_a) = spawn_tcp_worker();
    let (mut child_b, addr_b) = spawn_tcp_worker();
    let workers = vec![
        WorkerSpec::Connect { addr: addr_a },
        WorkerSpec::Connect { addr: addr_b },
    ];
    let figure = &gp_figures()[0];
    // Two sessions against the same listeners: a listener serves
    // connections sequentially, so this also proves session state does not
    // leak across jobs.
    for round in 0..2 {
        assert_sharded_matches_golden(
            figure,
            &workers,
            &DispatchOptions::default(),
            &format!("tcp round {round}"),
        );
    }
    let _ = child_a.kill();
    let _ = child_a.wait();
    let _ = child_b.kill();
    let _ = child_b.wait();
}

#[test]
fn mixed_spawned_and_tcp_workers_agree() {
    let (mut child, addr) = spawn_tcp_worker();
    let workers = vec![WorkerSpec::Connect { addr }, worker_with_args(&[])];
    assert_sharded_matches_golden(
        &gp_figures()[0],
        &workers,
        &DispatchOptions::default(),
        "mixed transports",
    );
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn store_backed_sharded_runs_replay_and_reproduce_the_golden_bytes() {
    let figure = gp_figures()
        .into_iter()
        .find(|f| f.name == "fig2")
        .expect("fig2 is a gp figure");
    let dir = std::env::temp_dir().join(format!("mfa-sharded-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workers = spawned_workers(worker_bin(), 2);
    let options = DispatchOptions::default();

    // First sharded run populates the store and matches the golden bytes.
    let mut store = SweepStore::open(&dir).expect("store opens");
    let (mut series, report) =
        run_sweep_sharded_stored(&figure.grid, &workers, &options, &mut store)
            .expect("populating sharded run");
    assert_eq!(report.units_replayed, 0);
    assert!(report.units_computed > 0);
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        common::golden("fig2", "json")
    );
    assert_eq!(
        export::series_to_csv(&series),
        common::golden("fig2", "csv")
    );

    // Second sharded run replays everything (no unit is ever leased) and
    // stays byte-identical.
    let mut store = SweepStore::open(&dir).expect("store reopens");
    let (mut series, report) =
        run_sweep_sharded_stored(&figure.grid, &workers, &options, &mut store)
            .expect("replaying sharded run");
    assert_eq!(report.points_computed, 0, "full replay computes nothing");
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        common::golden("fig2", "json")
    );
    assert_eq!(
        export::series_to_csv(&series),
        common::golden("fig2", "csv")
    );

    // Cross-engine resume: drop one segment (a "killed" run's missing unit)
    // and finish the sweep in-process against the same store — the threaded
    // executor and the dispatcher share the store format and fingerprints.
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("store directory lists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("jsonl"))
        .collect();
    segments.sort();
    std::fs::remove_file(&segments[0]).expect("segment removes");
    let mut store = SweepStore::open(&dir).expect("store reopens");
    let (mut series, report) =
        run_sweep_stored(&figure.grid, &ExecutorOptions::default(), &mut store)
            .expect("threaded resume");
    assert!(report.units_replayed > 0, "the kept segments replay");
    assert!(report.units_computed > 0, "the dropped unit recomputes");
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        common::golden("fig2", "json")
    );
    assert_eq!(
        export::series_to_csv(&series),
        common::golden("fig2", "csv")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_runs_through_a_remote_store_reproduce_the_golden_bytes() {
    use mfa_storenet::{RemoteStore, StoreServer};

    let figure = gp_figures()
        .into_iter()
        .find(|f| f.name == "fig2")
        .expect("fig2 is a gp figure");
    let root = std::env::temp_dir().join(format!("mfa-sharded-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = StoreServer::spawn("127.0.0.1:0", root.clone()).expect("store-server spawns");
    let addr = server.local_addr().to_string();
    let workers = spawned_workers(worker_bin(), 2);
    let options = DispatchOptions::default();

    // First sharded run computes everything and commits it over the wire.
    let mut store = RemoteStore::connect(&addr, "fig2").expect("client connects");
    let (mut series, report) =
        run_sweep_sharded_stored(&figure.grid, &workers, &options, &mut store)
            .expect("populating sharded remote run");
    assert_eq!(report.units_replayed, 0);
    assert!(report.units_computed > 0);
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        common::golden("fig2", "json")
    );
    assert_eq!(
        export::series_to_csv(&series),
        common::golden("fig2", "csv")
    );

    // A second sharded run from a fresh client replays the whole grid out
    // of the shared store — no unit is leased, the bytes do not move.
    let mut store = RemoteStore::connect(&addr, "fig2").expect("second client connects");
    let (mut series, report) =
        run_sweep_sharded_stored(&figure.grid, &workers, &options, &mut store)
            .expect("replaying sharded remote run");
    assert_eq!(report.points_computed, 0, "full replay computes nothing");
    zero_timing(&mut series);
    assert_eq!(
        export::series_to_json(&series),
        common::golden("fig2", "json")
    );
    assert_eq!(
        export::series_to_csv(&series),
        common::golden("fig2", "csv")
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}
