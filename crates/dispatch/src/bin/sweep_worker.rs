//! `sweep-worker` — one worker process of the sharded sweep dispatcher.
//!
//! ```text
//! sweep-worker [FLAGS]
//!   (no flags)           speak the protocol on stdin/stdout (spawned mode)
//!   --listen ADDR        bind ADDR (e.g. 127.0.0.1:0), print the bound
//!                        address to stdout, then serve TCP connections
//!                        sequentially, one protocol session each
//!   --fail-after N       fault injection: crash (no reply) when the next
//!                        unit arrives after N results were sent
//!   --garbage-after N    fault injection: emit a truncated frame instead
//!                        of result N+1, then exit
//!   --hang-after N       fault injection: hold the next lease after N
//!                        results forever (exercises the lease timeout)
//! ```
//!
//! The worker holds no state beyond one session's grid; all sweep semantics
//! live in [`mfa_explore::compute_unit`], so a unit computed here is
//! byte-identical to the same unit computed on a dispatcher thread.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use mfa_dispatch::{serve, FaultPlan};

struct Args {
    listen: Option<String>,
    faults: FaultPlan,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        faults: FaultPlan::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut count_flag = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or(format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs a nonnegative integer"))
        };
        match arg.as_str() {
            "--listen" => {
                args.listen = Some(iter.next().ok_or("--listen needs an address")?);
            }
            "--fail-after" => args.faults.fail_after = Some(count_flag("--fail-after")?),
            "--garbage-after" => args.faults.garbage_after = Some(count_flag("--garbage-after")?),
            "--hang-after" => args.faults.hang_after = Some(count_flag("--hang-after")?),
            other => {
                return Err(format!(
                    "unknown flag {other} (see the header of sweep_worker.rs)"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sweep-worker: {msg}");
            return ExitCode::from(2);
        }
    };

    match args.listen {
        None => {
            let stdin = std::io::stdin().lock();
            let stdout = std::io::stdout().lock();
            match serve(stdin, stdout, &args.faults) {
                Ok(_) => ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("sweep-worker: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(err) => {
                    eprintln!("sweep-worker: cannot bind {addr}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            // Print the bound address (resolves :0 to the actual port) so a
            // parent process can connect the dispatcher to it.
            match listener.local_addr() {
                Ok(local) => {
                    println!("listening on {local}");
                    let _ = std::io::stdout().flush();
                }
                Err(err) => {
                    eprintln!("sweep-worker: cannot read bound address: {err}");
                    return ExitCode::FAILURE;
                }
            }
            for stream in listener.incoming() {
                match stream {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(clone) => clone,
                            Err(err) => {
                                eprintln!("sweep-worker: cannot clone connection: {err}");
                                continue;
                            }
                        });
                        // One session per connection; a protocol error ends
                        // the session, not the listener.
                        if let Err(err) = serve(reader, stream, &args.faults) {
                            eprintln!("sweep-worker: session ended: {err}");
                        }
                    }
                    Err(err) => {
                        eprintln!("sweep-worker: accept failed: {err}");
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}
