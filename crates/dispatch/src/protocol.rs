//! The JSON-lines wire protocol between the dispatcher and its workers.
//!
//! Every frame is one compact JSON object on one `\n`-terminated line, with
//! a `"type"` tag. The payload codecs come from [`mfa_explore::wire`], so
//! every float crossing the boundary round-trips bit-for-bit and NaNs are
//! rejected at the edge.
//!
//! Session shape (dispatcher is always the initiator):
//!
//! ```text
//! dispatcher → worker   {"type":"job","protocol":4,"warm_start":…,"grid":…}
//! worker → dispatcher   {"type":"ready","protocol":4}
//! dispatcher → worker   {"type":"unit","id":0,"unit":{…},"seeds":[…]}  (repeated)
//! worker → dispatcher   {"type":"result","id":0,"points":[…],
//!                        "warms":[…],"warm_from_store":0}              (one per unit)
//!                       {"type":"solver_error","id":…,"message":…}     (on failure)
//! dispatcher → worker   {"type":"shutdown"}
//! ```
//!
//! A worker processes frames strictly in order, so the dispatcher may queue
//! units immediately after the job frame without waiting for `ready`; the
//! handshake exists to catch protocol-version skew early.

use mfa_alloc::solver::WarmStart;
use mfa_explore::json::Json;
use mfa_explore::wire::{self, WireError};
use mfa_platform::ResourceBudget;

use mfa_explore::{SweepGrid, SweepPoint, WorkUnit};

/// Version tag carried by `job`/`ready` frames — and by the allocation
/// service's `hello`/`ready` frames, which share this version space so one
/// constant governs every JSON-lines peer in the workspace. Bump on any
/// incompatible frame or payload change. v3 added store-neighbour warm-start
/// seeds to `unit` frames and per-point warm states to `result` frames; v4
/// introduced the serve-session frame family (`mfa_serve::protocol` —
/// `solve`/`report`/`rejected`) alongside the unchanged sweep frames; v5
/// added the shared-store frame family (`mfa_storenet::protocol` —
/// `store-hello`/`get`/`put`/`stats`/`evict`) and the serve session's
/// `stats` frame.
pub const PROTOCOL_VERSION: usize = 5;

/// A frame sent from the dispatcher to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Opens a session: the full grid every subsequent unit indexes into.
    Job {
        /// Protocol version of the dispatcher.
        protocol: usize,
        /// Whether workers warm-start GP+A solves within a unit.
        warm_start: bool,
        /// The sweep grid.
        grid: SweepGrid,
    },
    /// Assigns one work unit, identified by its index in the planned unit
    /// list (the dispatcher's lease key).
    Unit {
        /// Unit id (index into [`mfa_explore::plan_units`] output).
        id: usize,
        /// The unit itself.
        unit: WorkUnit,
        /// Store-neighbour warm-start seeds for the unit (empty unless the
        /// dispatcher runs store-backed). Fixed at planning time, so the
        /// unit's result stays a pure function of the frame.
        seeds: Vec<(ResourceBudget, WarmStart)>,
    },
    /// Ends the session; the worker exits cleanly.
    Shutdown,
}

/// A frame sent from a worker to the dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Acknowledges the job frame.
    Ready {
        /// Protocol version of the worker.
        protocol: usize,
    },
    /// A completed unit: one entry per budget point, `None` for skipped
    /// (infeasible) points.
    Result {
        /// Unit id being answered.
        id: usize,
        /// The unit's points.
        points: Vec<Option<SweepPoint>>,
        /// Warm-start state each point's solve published, parallel to
        /// `points` (`None` for skipped points). The store-backed
        /// dispatcher persists these for future neighbour seeding.
        warms: Vec<Option<WarmStart>>,
        /// Points whose solve accepted a store-neighbour seed.
        warm_from_store: usize,
    },
    /// The unit hit a non-skippable solver failure. Deterministic for a
    /// given unit, so the dispatcher must not retry it on another worker.
    SolverError {
        /// Unit id being answered.
        id: usize,
        /// Display form of the underlying [`mfa_explore::ExploreError`].
        message: String,
    },
}

impl ToWorker {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::NonFinite`] if the grid carries a NaN/infinite
    /// float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            ToWorker::Job {
                protocol,
                warm_start,
                grid,
            } => Json::obj(vec![
                ("type", Json::str("job")),
                ("protocol", Json::Num(*protocol as f64)),
                ("warm_start", Json::Bool(*warm_start)),
                ("grid", wire::grid_to_json(grid)?),
            ]),
            ToWorker::Unit { id, unit, seeds } => Json::obj(vec![
                ("type", Json::str("unit")),
                ("id", Json::Num(*id as f64)),
                ("unit", wire::unit_to_json(unit)),
                ("seeds", seeds_to_json(seeds)?),
            ]),
            ToWorker::Shutdown => Json::obj(vec![("type", Json::str("shutdown"))]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one dispatcher→worker line.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads.
    pub fn decode(line: &str) -> Result<ToWorker, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "job" => Ok(ToWorker::Job {
                protocol: usize_field(&doc, "protocol")?,
                warm_start: doc
                    .get("warm_start")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| WireError::Schema("job frame needs 'warm_start'".into()))?,
                grid: wire::grid_from_json(
                    doc.get("grid")
                        .ok_or_else(|| WireError::Schema("job frame needs 'grid'".into()))?,
                )?,
            }),
            "unit" => Ok(ToWorker::Unit {
                id: usize_field(&doc, "id")?,
                unit: wire::unit_from_json(
                    doc.get("unit")
                        .ok_or_else(|| WireError::Schema("unit frame needs 'unit'".into()))?,
                )?,
                seeds: seeds_from_json(
                    doc.get("seeds")
                        .ok_or_else(|| WireError::Schema("unit frame needs 'seeds'".into()))?,
                )?,
            }),
            "shutdown" => Ok(ToWorker::Shutdown),
            other => Err(WireError::Schema(format!(
                "unknown dispatcher frame type '{other}'"
            ))),
        }
    }
}

impl FromWorker {
    /// Encodes the frame as one JSON line (no trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::NonFinite`] if a point carries a NaN/infinite
    /// float.
    pub fn encode(&self) -> Result<String, WireError> {
        let doc = match self {
            FromWorker::Ready { protocol } => Json::obj(vec![
                ("type", Json::str("ready")),
                ("protocol", Json::Num(*protocol as f64)),
            ]),
            FromWorker::Result {
                id,
                points,
                warms,
                warm_from_store,
            } => Json::obj(vec![
                ("type", Json::str("result")),
                ("id", Json::Num(*id as f64)),
                ("points", wire::points_to_json(points)?),
                ("warms", warms_to_json(warms)?),
                ("warm_from_store", Json::Num(*warm_from_store as f64)),
            ]),
            FromWorker::SolverError { id, message } => Json::obj(vec![
                ("type", Json::str("solver_error")),
                ("id", Json::Num(*id as f64)),
                ("message", Json::str(message.as_str())),
            ]),
        };
        Ok(doc.to_string())
    }

    /// Decodes one worker→dispatcher line.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, unknown frame types, or
    /// invalid payloads — the dispatcher treats any of these as a worker
    /// fault and reassigns the worker's leases.
    pub fn decode(line: &str) -> Result<FromWorker, WireError> {
        let doc = Json::parse(line).map_err(|err| WireError::Parse(err.to_string()))?;
        match type_tag(&doc)? {
            "ready" => Ok(FromWorker::Ready {
                protocol: usize_field(&doc, "protocol")?,
            }),
            "result" => Ok(FromWorker::Result {
                id: usize_field(&doc, "id")?,
                points: wire::points_from_json(
                    doc.get("points")
                        .ok_or_else(|| WireError::Schema("result frame needs 'points'".into()))?,
                )?,
                warms: warms_from_json(
                    doc.get("warms")
                        .ok_or_else(|| WireError::Schema("result frame needs 'warms'".into()))?,
                )?,
                warm_from_store: usize_field(&doc, "warm_from_store")?,
            }),
            "solver_error" => Ok(FromWorker::SolverError {
                id: usize_field(&doc, "id")?,
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or_else(|| WireError::Schema("solver_error frame needs 'message'".into()))?
                    .to_owned(),
            }),
            other => Err(WireError::Schema(format!(
                "unknown worker frame type '{other}'"
            ))),
        }
    }
}

fn seeds_to_json(seeds: &[(ResourceBudget, WarmStart)]) -> Result<Json, WireError> {
    Ok(Json::Arr(
        seeds
            .iter()
            .map(|(budget, warm)| {
                Ok(Json::obj(vec![
                    ("budget", wire::budget_to_json(budget)?),
                    ("warm", wire::warm_hint_to_json(warm)?),
                ]))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    ))
}

fn seeds_from_json(value: &Json) -> Result<Vec<(ResourceBudget, WarmStart)>, WireError> {
    value
        .as_arr()
        .ok_or_else(|| WireError::Schema("'seeds' must be an array".into()))?
        .iter()
        .map(|item| {
            let budget = wire::budget_from_json(
                item.get("budget")
                    .ok_or_else(|| WireError::Schema("seed needs 'budget'".into()))?,
            )?;
            let warm = wire::warm_hint_from_json(
                item.get("warm")
                    .ok_or_else(|| WireError::Schema("seed needs 'warm'".into()))?,
            )?;
            Ok((budget, warm))
        })
        .collect()
}

fn warms_to_json(warms: &[Option<WarmStart>]) -> Result<Json, WireError> {
    Ok(Json::Arr(
        warms
            .iter()
            .map(|warm| match warm {
                Some(w) => wire::warm_hint_to_json(w),
                None => Ok(Json::Null),
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    ))
}

fn warms_from_json(value: &Json) -> Result<Vec<Option<WarmStart>>, WireError> {
    value
        .as_arr()
        .ok_or_else(|| WireError::Schema("'warms' must be an array".into()))?
        .iter()
        .map(|item| match item {
            Json::Null => Ok(None),
            other => wire::warm_hint_from_json(other).map(Some),
        })
        .collect()
}

fn type_tag(doc: &Json) -> Result<&str, WireError> {
    doc.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::Schema("frame needs a string 'type' tag".into()))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, WireError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| WireError::Schema(format!("frame field '{key}' must be an integer")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;
    use mfa_explore::{CaseSpec, SolverSpec};

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.6, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap()
    }

    #[test]
    fn dispatcher_frames_round_trip() {
        let frames = [
            ToWorker::Job {
                protocol: PROTOCOL_VERSION,
                warm_start: true,
                grid: tiny_grid(),
            },
            ToWorker::Unit {
                id: 7,
                unit: mfa_explore::WorkUnit {
                    series: 0,
                    start: 0,
                    end: 2,
                },
                seeds: vec![(
                    ResourceBudget::uniform(0.7),
                    WarmStart::none()
                        .with_relaxed_ii(1.25)
                        .with_cu_counts(vec![1, 2, 3]),
                )],
            },
            ToWorker::Shutdown,
        ];
        for frame in frames {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'));
            assert_eq!(ToWorker::decode(&line).unwrap(), frame);
        }
    }

    #[test]
    fn worker_frames_round_trip() {
        let frames = [
            FromWorker::Ready {
                protocol: PROTOCOL_VERSION,
            },
            FromWorker::Result {
                id: 3,
                points: vec![None],
                warms: vec![None],
                warm_from_store: 0,
            },
            FromWorker::SolverError {
                id: 4,
                message: "sweep point failed (…): numerical trouble".into(),
            },
        ];
        for frame in frames {
            let line = frame.encode().unwrap();
            assert!(!line.contains('\n'));
            assert_eq!(FromWorker::decode(&line).unwrap(), frame);
        }
    }

    #[test]
    fn garbage_lines_are_rejected_not_fatal() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"result\",\"id\":",
            "{\"id\":1}",
            "{\"type\":\"warp\"}",
            "{\"type\":\"result\",\"id\":1}",
            "{\"type\":\"result\",\"id\":1,\"points\":[]}",
            "{\"type\":\"unit\",\"id\":1,\"unit\":{\"series\":0,\"start\":0,\"end\":1}}",
            "[1,2,3]",
        ] {
            assert!(FromWorker::decode(bad).is_err(), "{bad:?}");
            assert!(ToWorker::decode(bad).is_err(), "{bad:?}");
        }
    }
}
