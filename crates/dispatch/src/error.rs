//! Error type of the sharded dispatcher.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use mfa_explore::wire::WireError;
use mfa_explore::ExploreError;

/// Error returned by the dispatcher and the worker loop.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DispatchError {
    /// Planning or option validation failed (zero chunk size, bad grid).
    Explore(ExploreError),
    /// The grid or a result could not be encoded for the wire (NaN floats).
    Wire(WireError),
    /// A transport-level I/O failure outside any single worker's fault
    /// handling (worker-local I/O faults are absorbed by reassignment).
    Io(String),
    /// The peer violated the frame protocol in a way that is not
    /// recoverable by reassignment (version skew, unit before job, …).
    Protocol(String),
    /// `run_sweep_sharded` was called with an empty worker list.
    NoWorkers,
    /// A worker process could not be spawned.
    Spawn {
        /// The program that failed to start.
        program: String,
        /// The underlying OS error.
        message: String,
    },
    /// A TCP worker could not be reached.
    Connect {
        /// The address dialled.
        addr: String,
        /// The underlying OS error.
        message: String,
    },
    /// No `sweep-worker` binary next to the current executable.
    WorkerBinaryNotFound {
        /// The candidate paths that were checked.
        searched: Vec<PathBuf>,
    },
    /// A worker reported a deterministic solver failure for a unit — the
    /// sharded equivalent of [`ExploreError::Solver`]. Not retried, because
    /// every worker would fail the same way.
    Solver {
        /// Index of the failing unit in planned order.
        unit: usize,
        /// Display form of the worker-side [`ExploreError`].
        message: String,
    },
    /// A unit crashed every worker it was leased to.
    UnitExhausted {
        /// Index of the poisoned unit in planned order.
        unit: usize,
        /// How many leases were attempted.
        attempts: usize,
    },
    /// Every worker died (or timed out) with work still outstanding.
    AllWorkersLost {
        /// Units without a result when the last worker was lost.
        outstanding: usize,
        /// The most recent worker fault observed, if any (corrupt frame
        /// description, timeout note) — the best available diagnosis.
        last_fault: Option<String>,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Explore(err) => write!(f, "{err}"),
            DispatchError::Wire(err) => write!(f, "wire codec failure: {err}"),
            DispatchError::Io(msg) => write!(f, "dispatcher I/O failure: {msg}"),
            DispatchError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DispatchError::NoWorkers => write!(f, "a sharded sweep needs at least one worker"),
            DispatchError::Spawn { program, message } => {
                write!(f, "could not spawn worker '{program}': {message}")
            }
            DispatchError::Connect { addr, message } => {
                write!(f, "could not connect to worker at {addr}: {message}")
            }
            DispatchError::WorkerBinaryNotFound { searched } => {
                write!(
                    f,
                    "no sweep-worker binary found (searched: {}); \
                     build it with `cargo build --release -p mfa_dispatch`",
                    searched
                        .iter()
                        .map(|p| p.display().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            DispatchError::Solver { unit, message } => {
                write!(f, "work unit {unit} failed deterministically: {message}")
            }
            DispatchError::UnitExhausted { unit, attempts } => write!(
                f,
                "work unit {unit} crashed or timed out all {attempts} workers it was leased to"
            ),
            DispatchError::AllWorkersLost {
                outstanding,
                last_fault,
            } => {
                write!(
                    f,
                    "all workers were lost with {outstanding} work unit(s) outstanding"
                )?;
                if let Some(fault) = last_fault {
                    write!(f, " (last fault: {fault})")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for DispatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DispatchError::Explore(err) => Some(err),
            DispatchError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ExploreError> for DispatchError {
    fn from(err: ExploreError) -> Self {
        DispatchError::Explore(err)
    }
}

impl From<WireError> for DispatchError {
    fn from(err: WireError) -> Self {
        DispatchError::Wire(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_piece() {
        assert!(DispatchError::NoWorkers.to_string().contains("worker"));
        assert!(DispatchError::Solver {
            unit: 3,
            message: "boom".into()
        }
        .to_string()
        .contains("unit 3"));
        assert!(DispatchError::UnitExhausted {
            unit: 2,
            attempts: 3
        }
        .to_string()
        .contains("3 workers"));
        let lost = DispatchError::AllWorkersLost {
            outstanding: 5,
            last_fault: Some("malformed JSON: …".into()),
        };
        assert!(lost.to_string().contains('5'));
        assert!(lost.to_string().contains("malformed"));
        assert!(DispatchError::WorkerBinaryNotFound {
            searched: vec![PathBuf::from("/tmp/x")]
        }
        .to_string()
        .contains("/tmp/x"));
        let wrapped = DispatchError::Explore(ExploreError::InvalidOptions("chunk".into()));
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&DispatchError::NoWorkers).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DispatchError>();
    }
}
