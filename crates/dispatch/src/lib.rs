//! Multi-process sharded sweep dispatcher.
//!
//! [`mfa_explore::run_sweep`] parallelizes a [`mfa_explore::SweepGrid`]
//! across threads; this crate parallelizes it across OS *processes* — and,
//! over TCP, across hosts — without changing a single byte of the output.
//! The move mirrors how inter-node collectives are layered over a fixed
//! single-node algorithm: the executor's deterministic chunk decomposition
//! ([`mfa_explore::plan_units`]) and per-unit solve
//! ([`mfa_explore::compute_unit`]) stay exactly as they are, and this crate
//! adds only transport, scheduling and failure handling around them.
//!
//! * [`run_sweep_sharded`] — the dispatcher. Serializes the grid once,
//!   leases work units to workers (spawned over stdio or connected over
//!   TCP), reassigns leases on worker crash, corrupt frames, or lease
//!   timeout, and merges results by unit index so the output is
//!   byte-identical to a serial in-process run (timing fields aside)
//!   regardless of worker count, partition, or completion order.
//! * [`serve`] — the worker loop; the `sweep-worker` binary wraps it for
//!   stdio and TCP operation.
//! * [`protocol`] — the JSON-lines frame protocol, built on
//!   [`mfa_explore::wire`]'s exact-round-trip codec.
//! * [`FaultPlan`] — deterministic fault injection (crash mid-sweep,
//!   truncated frames) used by the integration tests to prove the
//!   reassignment paths preserve output bytes.
//!
//! # Example
//!
//! ```no_run
//! use mfa_dispatch::{default_worker_program, run_sweep_sharded, spawned_workers,
//!                    DispatchOptions};
//! use mfa_explore::figures;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let figure = figures::figure2(true)?;
//! let workers = spawned_workers(default_worker_program()?, 4);
//! let series = run_sweep_sharded(&figure.grid, &workers, &DispatchOptions::default())?;
//! assert_eq!(series.len(), figure.grid.num_series());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatcher;
mod error;
pub mod protocol;
mod worker;

pub use dispatcher::{
    default_worker_program, run_sweep_sharded, run_sweep_sharded_stored, spawned_workers,
    DispatchOptions, WorkerSpec,
};
pub use error::DispatchError;
pub use worker::{serve, FaultPlan, INJECTED_CRASH_EXIT_CODE};
