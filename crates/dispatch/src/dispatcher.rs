//! The dispatcher: shards a [`SweepGrid`] across worker processes.
//!
//! The dispatcher reuses the executor's deterministic chunk decomposition
//! ([`plan_units`]) as its unit of distribution, leases units to workers
//! (spawned over stdio or connected over TCP), reassigns leases when a
//! worker crashes, corrupts a frame, or exceeds its lease timeout, and
//! merges completed units with [`assemble_series`] — by unit index, never by
//! completion order. Because a unit's result is a pure function of
//! `(grid, unit, warm_start, seeds)` and the wire codec round-trips floats
//! bit-for-bit, the merged output is byte-identical to
//! [`mfa_explore::run_sweep`] with [`ExecutorOptions::serial`] (modulo the
//! wall-clock `solve_seconds` fields) for *any* worker count, partition, or
//! completion order.
//!
//! [`run_sweep_sharded_stored`] adds the persistent sweep store: fully
//! cached units are replayed from disk without ever being leased, only the
//! remainder is distributed, store-neighbour warm-start seeds ride the unit
//! frames, and every freshly computed unit is committed the moment its
//! result frame arrives — so a killed dispatcher resumes from the units that
//! finished, exactly like the threaded executor.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use mfa_explore::store::{commit_unit, plan_store, ResultStore, StorePlan};
use mfa_explore::{
    assemble_series, plan_units, StoreRunReport, SweepGrid, SweepPoint, SweepSeries, UnitOutput,
};

use crate::protocol::{FromWorker, ToWorker, PROTOCOL_VERSION};
use crate::DispatchError;

// ExecutorOptions is only referenced by the docs above.
#[allow(unused_imports)]
use mfa_explore::ExecutorOptions;

/// How to obtain one worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerSpec {
    /// Spawn a local process speaking the protocol on its stdio.
    Spawn {
        /// Path of the worker binary (see [`default_worker_program`]).
        program: PathBuf,
        /// Extra arguments (the fault-injection tests pass `--fail-after`
        /// etc. here).
        args: Vec<String>,
    },
    /// Connect to a worker listening on TCP (`sweep-worker --listen`).
    Connect {
        /// `host:port` of the remote worker.
        addr: String,
    },
}

impl WorkerSpec {
    /// A plain spawned worker with no extra arguments.
    pub fn spawn(program: impl Into<PathBuf>) -> Self {
        WorkerSpec::Spawn {
            program: program.into(),
            args: Vec::new(),
        }
    }
}

/// Options of the sharded dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchOptions {
    /// Budget points per work unit. Must match the `chunk_size` of the
    /// in-process run being compared against: the decomposition — and
    /// therefore the warm-start state every point sees — is part of the
    /// output contract. Zero is rejected, as in the executor.
    pub chunk_size: usize,
    /// Warm-start GP+A solves within a unit (see
    /// [`ExecutorOptions::warm_start`]).
    pub warm_start: bool,
    /// A worker holding any lease longer than this is presumed hung: it is
    /// killed and its leases are reassigned. `None` disables the timeout.
    /// Timeouts below one millisecond are rejected with a typed
    /// [`DispatchError::Explore`]`(`[`InvalidOptions`]`)` error: a zero (or
    /// near-zero) timeout makes every lease instantly reassignable, so the
    /// dispatcher would kill and re-lease forever without any unit ever
    /// completing — a livelock, not a configuration.
    ///
    /// [`InvalidOptions`]: mfa_explore::ExploreError::InvalidOptions
    pub lease_timeout: Option<Duration>,
    /// Maximum leases per unit before the run fails with
    /// [`DispatchError::UnitExhausted`] (a unit that kills every worker it
    /// touches would otherwise cycle forever).
    pub max_attempts: usize,
    /// Units a worker may hold at once; 2 overlaps compute with transport.
    pub pipeline_depth: usize,
}

impl Default for DispatchOptions {
    fn default() -> Self {
        DispatchOptions {
            chunk_size: 8,
            warm_start: true,
            lease_timeout: Some(Duration::from_secs(300)),
            max_attempts: 3,
            pipeline_depth: 2,
        }
    }
}

/// Locates the `sweep-worker` binary next to the current executable (the
/// cargo layout: examples live one directory below the binaries).
///
/// # Errors
///
/// Returns [`DispatchError::WorkerBinaryNotFound`] listing the paths that
/// were checked.
pub fn default_worker_program() -> Result<PathBuf, DispatchError> {
    let exe = std::env::current_exe().map_err(|err| DispatchError::Io(err.to_string()))?;
    let mut searched = Vec::new();
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let candidate = d.join("sweep-worker");
        if candidate.is_file() {
            return Ok(candidate);
        }
        searched.push(candidate);
        dir = d.parent();
    }
    Err(DispatchError::WorkerBinaryNotFound { searched })
}

/// `count` copies of the same spawned-worker spec.
pub fn spawned_workers(program: impl Into<PathBuf>, count: usize) -> Vec<WorkerSpec> {
    let program = program.into();
    (0..count)
        .map(|_| WorkerSpec::spawn(program.clone()))
        .collect()
}

/// What the reader thread of one worker reports back to the main loop.
enum Event {
    Frame(FromWorker),
    /// The worker emitted bytes that do not decode as a frame.
    Corrupt(String),
    /// EOF or read error: the worker is gone.
    Closed,
}

/// The writing half of one worker connection (the reading half lives in the
/// reader thread).
struct Connection {
    writer: Box<dyn Write + Send>,
    child: Option<Child>,
    /// For TCP workers: a handle to force-shutdown the socket, so a wedged
    /// remote session is actually torn down (killing has no child to act
    /// on) and the reader thread is guaranteed to see EOF.
    stream: Option<TcpStream>,
}

impl Connection {
    fn terminate(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(stream) = &self.stream {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Per-worker dispatcher-side state.
struct WorkerState {
    alive: bool,
    /// Set once the worker's `ready` handshake arrives; no unit is leased
    /// before it, so a connection stuck in a TCP accept backlog (the
    /// listener serves sessions sequentially) idles harmlessly instead of
    /// stalling leases.
    ready: bool,
    /// When the connection was opened — the handshake deadline's anchor.
    connected_at: Instant,
    /// `(unit id, last liveness timestamp)` for every outstanding unit.
    /// Timestamps refresh whenever the worker proves progress (any result
    /// frame), so a queued unit behind a long solve is not misread as hung.
    leases: Vec<(usize, Instant)>,
}

/// A frame from a worker proves its whole pipeline is making progress;
/// restart the clocks of its remaining leases so a unit queued behind a
/// long solve is not misread as hung.
fn refresh_leases(state: &mut WorkerState) {
    let now = Instant::now();
    for (_, since) in &mut state.leases {
        *since = now;
    }
}

enum UnitOutcome {
    Points(Vec<Option<SweepPoint>>),
    SolverError(String),
}

/// Runs `grid` sharded across `workers` and merges the result in grid
/// order. See the module docs for the determinism contract.
///
/// # Errors
///
/// Returns [`DispatchError::Solver`] for the earliest (in unit order)
/// deterministic solver failure — mirroring [`mfa_explore::run_sweep`] —
/// and the other [`DispatchError`] variants for infrastructure failures
/// that reassignment could not absorb.
pub fn run_sweep_sharded(
    grid: &SweepGrid,
    workers: &[WorkerSpec],
    options: &DispatchOptions,
) -> Result<Vec<SweepSeries>, DispatchError> {
    run_sharded_impl(grid, workers, options, None).map(|(series, _)| series)
}

/// Like [`run_sweep_sharded`], but backed by a persistent [`ResultStore`]
/// (a local [`mfa_explore::SweepStore`] directory or `mfa_storenet`'s
/// `RemoteStore`):
/// units whose points are all stored are replayed without being leased,
/// freshly computed units are committed as their results arrive, and
/// store-neighbour warm-start seeds are shipped to the workers. Returns the
/// merged series together with the run's store counters.
///
/// # Errors
///
/// As [`run_sweep_sharded`], plus [`DispatchError::Explore`] wrapping
/// [`mfa_explore::ExploreError::Store`] when the store directory itself
/// fails (damaged store *contents* are counted misses, never errors).
pub fn run_sweep_sharded_stored(
    grid: &SweepGrid,
    workers: &[WorkerSpec],
    options: &DispatchOptions,
    store: &mut dyn ResultStore,
) -> Result<(Vec<SweepSeries>, StoreRunReport), DispatchError> {
    run_sharded_impl(grid, workers, options, Some(store))
}

fn run_sharded_impl(
    grid: &SweepGrid,
    workers: &[WorkerSpec],
    options: &DispatchOptions,
    mut store: Option<&mut dyn ResultStore>,
) -> Result<(Vec<SweepSeries>, StoreRunReport), DispatchError> {
    if workers.is_empty() {
        return Err(DispatchError::NoWorkers);
    }
    if options.pipeline_depth == 0 {
        return Err(DispatchError::Explore(
            mfa_explore::ExploreError::InvalidOptions("pipeline_depth must be at least 1".into()),
        ));
    }
    if let Some(timeout) = options.lease_timeout {
        // Sub-millisecond timeouts expire leases the instant they are
        // granted: every worker is presumed hung before it can answer, its
        // leases are reassigned, and the run livelocks through kill/re-lease
        // cycles. Reject them before any worker is spawned.
        if timeout < Duration::from_millis(1) {
            return Err(DispatchError::Explore(
                mfa_explore::ExploreError::InvalidOptions(format!(
                    "lease_timeout must be at least 1ms (got {timeout:?}); \
                     use None to disable the timeout entirely"
                )),
            ));
        }
    }
    let units = plan_units(grid, options.chunk_size)?;

    // Store-backed runs consult the store at planning time: fully cached
    // units are replayed straight into the result table and never leased,
    // and the remaining units get their warm-start seeds fixed up front so
    // every worker (and any resume) computes from identical inputs.
    let plan: Option<StorePlan> = match store.as_deref_mut() {
        Some(st) => Some(plan_store(grid, &units, options.warm_start, st)?),
        None => None,
    };
    let mut report = StoreRunReport::default();
    if let Some(st) = store.as_deref() {
        report.corrupt_entries = st.corrupt_count();
        report.version_mismatches = st.version_mismatch_count();
    }
    let mut results: Vec<Option<UnitOutcome>> = (0..units.len()).map(|_| None).collect();
    if let Some(plan) = &plan {
        for (uid, unit_plan) in plan.units.iter().enumerate() {
            if let Some(points) = &unit_plan.cached {
                report.units_replayed += 1;
                report.points_replayed += points.len();
                results[uid] = Some(UnitOutcome::Points(points.clone()));
            }
        }
    }
    if results.iter().all(Option::is_some) {
        // Full replay: nothing to lease, no worker is ever spawned.
        let completed = results
            .into_iter()
            .map(|slot| match slot {
                Some(UnitOutcome::Points(points)) => points,
                _ => unreachable!("replayed units hold points"),
            })
            .collect();
        return Ok((assemble_series(grid, &units, completed), report));
    }

    let mut job_line = ToWorker::Job {
        protocol: PROTOCOL_VERSION,
        warm_start: options.warm_start,
        grid: grid.clone(),
    }
    .encode()?;
    job_line.push('\n');

    let (tx, rx) = mpsc::channel::<(usize, Event)>();
    let mut conns: Vec<Option<Connection>> = Vec::with_capacity(workers.len());
    let mut states: Vec<WorkerState> = Vec::with_capacity(workers.len());
    for (id, spec) in workers.iter().enumerate() {
        let conn = open_worker(spec, id, &job_line, tx.clone())?;
        conns.push(Some(conn));
        states.push(WorkerState {
            alive: true,
            ready: false,
            connected_at: Instant::now(),
            leases: Vec::new(),
        });
    }

    let mut pending: VecDeque<usize> = (0..units.len())
        .filter(|&uid| results[uid].is_none())
        .collect();
    let mut attempts = vec![0usize; units.len()];
    // Lowest unit id that reported a deterministic solver failure. Units at
    // or above it stop being assigned, but everything below still completes
    // so the surfaced error is the lowest-index one — independent of which
    // worker failed first, exactly as in the threaded executor.
    let mut abort_at: Option<usize> = None;
    let mut failed: Vec<usize> = Vec::new();
    let mut last_fault: Option<String> = None;

    let tick = options
        .lease_timeout
        .map_or(Duration::from_millis(500), |t| {
            (t / 4).max(Duration::from_millis(50))
        });

    'run: loop {
        // 1. Bury failed workers and put their leases back in the queue.
        while let Some(wid) = failed.pop() {
            if !states[wid].alive {
                continue;
            }
            states[wid].alive = false;
            if let Some(mut conn) = conns[wid].take() {
                conn.terminate();
            }
            let leases = std::mem::take(&mut states[wid].leases);
            for (uid, _) in leases {
                // Units that already have a result, or that sit at/above the
                // abort cut, will never be reassigned — exhausting their
                // attempts must not mask the lowest-index solver error the
                // contract surfaces.
                if results[uid].is_some() || abort_at.is_some_and(|cut| uid >= cut) {
                    continue;
                }
                if attempts[uid] >= options.max_attempts {
                    shutdown_workers(&mut conns, &mut states);
                    return Err(DispatchError::UnitExhausted {
                        unit: uid,
                        attempts: attempts[uid],
                    });
                }
                // Keep the queue in unit order so reassignment preserves
                // the lowest-index-first policy.
                let pos = pending.partition_point(|&u| u < uid);
                pending.insert(pos, uid);
            }
        }

        // 2. Top up every live worker that has completed its handshake (in
        //    worker order, units in unit order).
        for wid in 0..states.len() {
            if !states[wid].alive || !states[wid].ready {
                continue;
            }
            while states[wid].leases.len() < options.pipeline_depth {
                let Some(pos) = pending
                    .iter()
                    .position(|&u| abort_at.map_or(true, |cut| u < cut))
                else {
                    break;
                };
                let uid = pending.remove(pos).expect("position() found it");
                if results[uid].is_some() {
                    continue;
                }
                attempts[uid] += 1;
                let frame = ToWorker::Unit {
                    id: uid,
                    unit: units[uid],
                    seeds: plan
                        .as_ref()
                        .map(|p| p.units[uid].seeds.clone())
                        .unwrap_or_default(),
                };
                let mut line = frame.encode()?;
                line.push('\n');
                let conn = conns[wid].as_mut().expect("alive workers have connections");
                if conn.writer.write_all(line.as_bytes()).is_err() || conn.writer.flush().is_err() {
                    // Put the unit straight back and bury the worker.
                    attempts[uid] -= 1;
                    let pos = pending.partition_point(|&u| u < uid);
                    pending.insert(pos, uid);
                    failed.push(wid);
                    continue 'run;
                }
                states[wid].leases.push((uid, Instant::now()));
            }
        }

        // 3. Done?
        let done = match abort_at {
            None => results.iter().all(Option::is_some),
            Some(cut) => results[..=cut].iter().all(Option::is_some),
        };
        if done {
            break;
        }

        // 4. Anyone left to do the remaining work?
        if states.iter().all(|s| !s.alive) {
            let outstanding = results.iter().filter(|r| r.is_none()).count();
            return Err(DispatchError::AllWorkersLost {
                outstanding,
                last_fault,
            });
        }

        // 5. Lease/handshake deadlines — checked every iteration, not only
        //    when the channel idles: a hung worker must be reaped even while
        //    its healthy peers keep streaming results.
        if let Some(limit) = options.lease_timeout {
            let now = Instant::now();
            for (wid, state) in states.iter().enumerate() {
                if !state.alive {
                    continue;
                }
                let handshake_overdue =
                    !state.ready && now.duration_since(state.connected_at) > limit;
                let lease_overdue = state
                    .leases
                    .iter()
                    .any(|(_, since)| now.duration_since(*since) > limit);
                if handshake_overdue || lease_overdue {
                    last_fault = Some(format!("worker {wid}: lease/handshake timeout"));
                    failed.push(wid);
                }
            }
            if !failed.is_empty() {
                continue;
            }
        }

        // 6. Wait for the next event.
        match rx.recv_timeout(tick) {
            Ok((wid, event)) => {
                if !states[wid].alive {
                    continue; // late chatter from a buried worker
                }
                match event {
                    Event::Frame(FromWorker::Ready { protocol }) => {
                        if protocol != PROTOCOL_VERSION {
                            shutdown_workers(&mut conns, &mut states);
                            return Err(DispatchError::Protocol(format!(
                                "worker {wid} speaks protocol {protocol}, \
                                 dispatcher speaks {PROTOCOL_VERSION}"
                            )));
                        }
                        states[wid].ready = true;
                    }
                    Event::Frame(FromWorker::Result {
                        id,
                        points,
                        warms,
                        warm_from_store,
                    }) => {
                        let Some(expected) = units.get(id).map(|u| u.end - u.start) else {
                            failed.push(wid);
                            continue;
                        };
                        if points.len() != expected || warms.len() != expected {
                            // A wrong-shaped result is worker corruption,
                            // not data: reassign, don't record.
                            failed.push(wid);
                            continue;
                        }
                        states[wid].leases.retain(|(uid, _)| *uid != id);
                        refresh_leases(&mut states[wid]);
                        if results[id].is_none() {
                            // Persist before recording, so a unit counted
                            // computed is always on disk for the next run.
                            if let (Some(st), Some(plan)) = (store.as_deref_mut(), plan.as_ref()) {
                                let output = UnitOutput {
                                    points: points.clone(),
                                    warms,
                                    warm_from_store,
                                };
                                if let Err(err) = commit_unit(st, &plan.units[id], &output) {
                                    shutdown_workers(&mut conns, &mut states);
                                    return Err(err.into());
                                }
                            }
                            report.units_computed += 1;
                            report.points_computed += points.len();
                            report.warm_from_store += warm_from_store;
                            results[id] = Some(UnitOutcome::Points(points));
                        }
                    }
                    Event::Frame(FromWorker::SolverError { id, message }) => {
                        if id >= units.len() {
                            failed.push(wid);
                            continue;
                        }
                        states[wid].leases.retain(|(uid, _)| *uid != id);
                        refresh_leases(&mut states[wid]);
                        if results[id].is_none() {
                            results[id] = Some(UnitOutcome::SolverError(message));
                        }
                        abort_at = Some(abort_at.map_or(id, |cut| cut.min(id)));
                    }
                    Event::Corrupt(fault) => {
                        last_fault = Some(format!("worker {wid}: {fault}"));
                        failed.push(wid);
                    }
                    Event::Closed => {
                        failed.push(wid);
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Nothing to do: the next iteration re-runs the deadline
                // scan in step 5.
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All reader threads ended; treat every remaining worker as
                // gone and let the liveness check above surface the error.
                for (wid, state) in states.iter().enumerate() {
                    if state.alive {
                        failed.push(wid);
                    }
                }
            }
        }
    }

    shutdown_workers(&mut conns, &mut states);

    // Surface the lowest-index solver failure, if any.
    for (uid, slot) in results.iter().enumerate() {
        if let Some(UnitOutcome::SolverError(message)) = slot {
            return Err(DispatchError::Solver {
                unit: uid,
                message: message.clone(),
            });
        }
    }
    let completed = results
        .into_iter()
        .map(|slot| match slot {
            Some(UnitOutcome::Points(points)) => points,
            _ => unreachable!("loop exits only when every unit has a result"),
        })
        .collect();
    Ok((assemble_series(grid, &units, completed), report))
}

/// Opens one worker connection, sends the job frame, and starts its reader
/// thread.
fn open_worker(
    spec: &WorkerSpec,
    id: usize,
    job_line: &str,
    tx: mpsc::Sender<(usize, Event)>,
) -> Result<Connection, DispatchError> {
    type Transport = (
        Box<dyn Write + Send>,
        Box<dyn Read + Send>,
        Option<Child>,
        Option<TcpStream>,
    );
    let (mut writer, reader, child, stream): Transport = match spec {
        WorkerSpec::Spawn { program, args } => {
            let mut child = Command::new(program)
                .args(args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|err| DispatchError::Spawn {
                    program: program.display().to_string(),
                    message: err.to_string(),
                })?;
            let stdin = child.stdin.take().expect("stdin was piped");
            let stdout = child.stdout.take().expect("stdout was piped");
            (Box::new(stdin), Box::new(stdout), Some(child), None)
        }
        WorkerSpec::Connect { addr } => {
            let connect_err = |err: std::io::Error| DispatchError::Connect {
                addr: addr.clone(),
                message: err.to_string(),
            };
            let stream = TcpStream::connect(addr).map_err(connect_err)?;
            let _ = stream.set_nodelay(true);
            let read_half = stream.try_clone().map_err(connect_err)?;
            let shutdown_handle = stream.try_clone().map_err(connect_err)?;
            (
                Box::new(stream),
                Box::new(read_half),
                None,
                Some(shutdown_handle),
            )
        }
    };

    // The job frame goes out before the reader thread starts, so a spawn
    // failure surfaces here rather than as a mysterious early EOF.
    writer
        .write_all(job_line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|err| DispatchError::Io(format!("sending job to worker {id}: {err}")))?;

    thread::spawn(move || {
        let mut lines = BufReader::new(reader).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let event = match FromWorker::decode(&line) {
                        Ok(frame) => Event::Frame(frame),
                        Err(err) => Event::Corrupt(err.to_string()),
                    };
                    let corrupt = matches!(event, Event::Corrupt(_));
                    if tx.send((id, event)).is_err() {
                        return;
                    }
                    if corrupt {
                        // One bad frame condemns the stream: framing after
                        // it cannot be trusted.
                        return;
                    }
                }
                Some(Err(_)) | None => {
                    let _ = tx.send((id, Event::Closed));
                    return;
                }
            }
        }
    });

    Ok(Connection {
        writer,
        child,
        stream,
    })
}

/// Sends `shutdown` to every live worker and reaps the children.
fn shutdown_workers(conns: &mut [Option<Connection>], states: &mut [WorkerState]) {
    let goodbye = ToWorker::Shutdown
        .encode()
        .expect("shutdown frame has no payload");
    for (conn, state) in conns.iter_mut().zip(states.iter_mut()) {
        if let Some(conn) = conn.as_mut() {
            if state.alive {
                let _ = conn.writer.write_all(format!("{goodbye}\n").as_bytes());
                let _ = conn.writer.flush();
            }
        }
        if let Some(mut conn) = conn.take() {
            // Closing stdin is the EOF the worker exits on; kill() is the
            // backstop for wedged processes. A TCP session is shut down
            // explicitly (the goodbye above has already been flushed and TCP
            // delivers queued bytes before the FIN), which also guarantees
            // the reader thread sees EOF and exits.
            drop(conn.writer);
            if let Some(stream) = &conn.stream {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            if let Some(child) = &mut conn.child {
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
        state.alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;
    use mfa_explore::{CaseSpec, SolverSpec};

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_worker_list_is_rejected() {
        assert!(matches!(
            run_sweep_sharded(&tiny_grid(), &[], &DispatchOptions::default()),
            Err(DispatchError::NoWorkers)
        ));
    }

    #[test]
    fn zero_chunk_size_is_rejected_before_spawning() {
        let err = run_sweep_sharded(
            &tiny_grid(),
            &[WorkerSpec::spawn("/nonexistent/worker")],
            &DispatchOptions {
                chunk_size: 0,
                ..DispatchOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DispatchError::Explore(_)), "{err}");
    }

    #[test]
    fn sub_millisecond_lease_timeouts_are_rejected_before_spawning() {
        // A zero (or sub-millisecond) lease timeout expires every lease the
        // moment it is granted — the dispatcher would kill and re-lease
        // workers forever. It must be a typed config error, caught before
        // any worker process is spawned (hence the nonexistent program).
        for timeout in [Duration::ZERO, Duration::from_micros(999)] {
            let err = run_sweep_sharded(
                &tiny_grid(),
                &[WorkerSpec::spawn("/nonexistent/worker")],
                &DispatchOptions {
                    lease_timeout: Some(timeout),
                    ..DispatchOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    DispatchError::Explore(mfa_explore::ExploreError::InvalidOptions(_))
                ),
                "timeout {timeout:?}: expected InvalidOptions, got {err}"
            );
        }
        // Exactly 1ms is the smallest accepted bound; it fails later (on the
        // nonexistent worker binary), not on validation.
        let err = run_sweep_sharded(
            &tiny_grid(),
            &[WorkerSpec::spawn("/nonexistent/worker")],
            &DispatchOptions {
                lease_timeout: Some(Duration::from_millis(1)),
                ..DispatchOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DispatchError::Spawn { .. }), "{err}");
    }

    #[test]
    fn unspawnable_worker_surfaces_the_program_name() {
        let err = run_sweep_sharded(
            &tiny_grid(),
            &[WorkerSpec::spawn("/nonexistent/worker")],
            &DispatchOptions::default(),
        )
        .unwrap_err();
        match err {
            DispatchError::Spawn { program, .. } => assert!(program.contains("nonexistent")),
            other => panic!("expected Spawn error, got {other}"),
        }
    }

    #[test]
    fn unreachable_tcp_worker_surfaces_the_address() {
        // Port 1 on localhost is essentially never listening.
        let err = run_sweep_sharded(
            &tiny_grid(),
            &[WorkerSpec::Connect {
                addr: "127.0.0.1:1".into(),
            }],
            &DispatchOptions::default(),
        )
        .unwrap_err();
        match err {
            DispatchError::Connect { addr, .. } => assert_eq!(addr, "127.0.0.1:1"),
            other => panic!("expected Connect error, got {other}"),
        }
    }
}
