//! The worker side of the dispatcher protocol.
//!
//! [`serve`] runs one protocol session over any line-oriented byte stream —
//! the `sweep-worker` binary points it at stdio or an accepted TCP
//! connection. The loop is strictly sequential: it decodes a frame, acts,
//! replies, repeats. All sweep semantics live in
//! [`mfa_explore::compute_unit_hinted`]; a unit computes here exactly as it
//! would on a thread of `run_sweep`, which is what keeps sharding
//! semantics-preserving. Store-neighbour seeds ride the unit frame, so a
//! store-backed dispatcher hands every worker the same hints the threaded
//! executor would use.
//!
//! [`FaultPlan`] deliberately breaks the loop for the fault-injection tests:
//! a worker can be told to die abruptly (as if it crashed or was killed)
//! or to emit a truncated garbage frame after a set number of results, so
//! the dispatcher's lease-reassignment paths are exercised deterministically
//! instead of by racing a `kill` against the sweep.

use std::io::{BufRead, Write};

use mfa_explore::{compute_unit_hinted, ExploreError, SweepGrid, DEFAULT_CACHE_CAPACITY};

use crate::protocol::{FromWorker, ToWorker, PROTOCOL_VERSION};
use crate::DispatchError;

/// Deterministic fault injection for tests: which misbehaviour to exhibit,
/// and after how many successfully returned results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Exit the process abruptly (no reply, no shutdown handshake) when the
    /// next unit arrives after this many results were sent — the stand-in
    /// for a worker crash / OOM-kill mid-sweep.
    pub fail_after: Option<usize>,
    /// Write a truncated, non-JSON fragment instead of the next result
    /// after this many results were sent, then exit — a corrupted frame.
    pub garbage_after: Option<usize>,
    /// Stop replying (sleep forever) when the next unit arrives after this
    /// many results were sent — a hung worker, caught only by the
    /// dispatcher's lease timeout.
    pub hang_after: Option<usize>,
}

/// Exit code used by [`serve`] when [`FaultPlan::fail_after`] fires, so
/// tests can tell an injected crash from an accidental one.
pub const INJECTED_CRASH_EXIT_CODE: i32 = 41;

/// Runs one worker session over `reader`/`writer` until a `shutdown` frame,
/// EOF, or an injected fault. Returns the number of results sent.
///
/// # Errors
///
/// Returns [`DispatchError::Protocol`] when the peer violates the protocol
/// (first frame not `job`, malformed frame, unit out of range) and
/// [`DispatchError::Io`] on transport errors. Solver failures are *not*
/// errors here — they are reported to the dispatcher as `solver_error`
/// frames, because they are deterministic facts about the grid.
pub fn serve(
    reader: impl BufRead,
    mut writer: impl Write,
    faults: &FaultPlan,
) -> Result<usize, DispatchError> {
    let mut session: Option<(SweepGrid, bool)> = None;
    let mut results_sent = 0usize;
    for line in reader.lines() {
        let line = line.map_err(|err| DispatchError::Io(err.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let frame = ToWorker::decode(&line)
            .map_err(|err| DispatchError::Protocol(format!("bad dispatcher frame: {err}")))?;
        match frame {
            ToWorker::Job {
                protocol,
                warm_start,
                grid,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(DispatchError::Protocol(format!(
                        "dispatcher speaks protocol {protocol}, worker speaks {PROTOCOL_VERSION}"
                    )));
                }
                if session.is_some() {
                    return Err(DispatchError::Protocol(
                        "received a second job frame mid-session".into(),
                    ));
                }
                send(
                    &mut writer,
                    &FromWorker::Ready {
                        protocol: PROTOCOL_VERSION,
                    },
                )?;
                session = Some((grid, warm_start));
            }
            ToWorker::Unit { id, unit, seeds } => {
                let Some((grid, warm_start)) = &session else {
                    return Err(DispatchError::Protocol(
                        "received a unit before the job frame".into(),
                    ));
                };
                if faults.fail_after == Some(results_sent) {
                    // Crash while holding the lease: no reply, no goodbye.
                    std::process::exit(INJECTED_CRASH_EXIT_CODE);
                }
                if faults.hang_after == Some(results_sent) {
                    // Hold the lease forever; only the dispatcher's lease
                    // timeout (and subsequent kill) gets rid of us.
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
                if faults.garbage_after == Some(results_sent) {
                    // A frame cut off mid-write, as if the worker died while
                    // flushing: not valid JSON and not newline-terminated.
                    writer
                        .write_all(b"{\"type\":\"result\",\"id\":")
                        .and_then(|()| writer.flush())
                        .map_err(|err| DispatchError::Io(err.to_string()))?;
                    return Ok(results_sent);
                }
                if unit.series >= grid.num_series() || unit.end > grid.budgets().len() {
                    return Err(DispatchError::Protocol(format!(
                        "unit {id} is out of range for the session grid"
                    )));
                }
                let reply = match compute_unit_hinted(
                    grid,
                    &unit,
                    *warm_start,
                    DEFAULT_CACHE_CAPACITY,
                    &seeds,
                ) {
                    Ok(output) => FromWorker::Result {
                        id,
                        points: output.points,
                        warms: output.warms,
                        warm_from_store: output.warm_from_store,
                    },
                    Err(err @ ExploreError::Solver { .. }) => FromWorker::SolverError {
                        id,
                        message: err.to_string(),
                    },
                    Err(err) => return Err(DispatchError::Explore(err)),
                };
                send(&mut writer, &reply)?;
                results_sent += 1;
            }
            ToWorker::Shutdown => break,
        }
    }
    Ok(results_sent)
}

fn send(writer: &mut impl Write, frame: &FromWorker) -> Result<(), DispatchError> {
    let mut line = frame
        .encode()
        .map_err(|err| DispatchError::Protocol(format!("unencodable worker frame: {err}")))?;
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|err| DispatchError::Io(err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;
    use mfa_explore::{plan_units, CaseSpec, SolverSpec};

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap()
    }

    fn session_script(grid: &SweepGrid) -> String {
        let mut script = String::new();
        script.push_str(
            &ToWorker::Job {
                protocol: PROTOCOL_VERSION,
                warm_start: true,
                grid: grid.clone(),
            }
            .encode()
            .unwrap(),
        );
        script.push('\n');
        for (id, unit) in plan_units(grid, 1).unwrap().into_iter().enumerate() {
            script.push_str(
                &ToWorker::Unit {
                    id,
                    unit,
                    seeds: Vec::new(),
                }
                .encode()
                .unwrap(),
            );
            script.push('\n');
        }
        script.push_str(&ToWorker::Shutdown.encode().unwrap());
        script.push('\n');
        script
    }

    #[test]
    fn serves_a_full_session_in_process() {
        let grid = tiny_grid();
        let script = session_script(&grid);
        let mut out = Vec::new();
        let sent = serve(script.as_bytes(), &mut out, &FaultPlan::default()).unwrap();
        assert_eq!(sent, 2);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3); // ready + 2 results
        assert!(matches!(
            FromWorker::decode(lines[0]).unwrap(),
            FromWorker::Ready { .. }
        ));
        for (idx, line) in lines[1..].iter().enumerate() {
            let FromWorker::Result {
                id, points, warms, ..
            } = FromWorker::decode(line).unwrap()
            else {
                panic!("result frame expected");
            };
            assert_eq!(id, idx);
            assert_eq!(points.len(), 1);
            assert!(points[0].is_some());
            assert_eq!(warms.len(), 1);
            assert!(warms[0].is_some());
        }
    }

    #[test]
    fn unit_before_job_is_a_protocol_error() {
        let script = format!(
            "{}\n",
            ToWorker::Unit {
                id: 0,
                unit: mfa_explore::WorkUnit {
                    series: 0,
                    start: 0,
                    end: 1
                },
                seeds: Vec::new(),
            }
            .encode()
            .unwrap()
        );
        let mut out = Vec::new();
        assert!(matches!(
            serve(script.as_bytes(), &mut out, &FaultPlan::default()),
            Err(DispatchError::Protocol(_))
        ));
    }

    #[test]
    fn out_of_range_unit_is_a_protocol_error() {
        let grid = tiny_grid();
        let mut script = ToWorker::Job {
            protocol: PROTOCOL_VERSION,
            warm_start: false,
            grid: grid.clone(),
        }
        .encode()
        .unwrap();
        script.push('\n');
        script.push_str(
            &ToWorker::Unit {
                id: 0,
                unit: mfa_explore::WorkUnit {
                    series: 9,
                    start: 0,
                    end: 1,
                },
                seeds: Vec::new(),
            }
            .encode()
            .unwrap(),
        );
        script.push('\n');
        let mut out = Vec::new();
        assert!(matches!(
            serve(script.as_bytes(), &mut out, &FaultPlan::default()),
            Err(DispatchError::Protocol(_))
        ));
    }

    #[test]
    fn garbage_fault_truncates_the_stream() {
        let grid = tiny_grid();
        let script = session_script(&grid);
        let mut out = Vec::new();
        let sent = serve(
            script.as_bytes(),
            &mut out,
            &FaultPlan {
                garbage_after: Some(1),
                ..FaultPlan::default()
            },
        )
        .unwrap();
        assert_eq!(sent, 1);
        let text = std::str::from_utf8(&out).unwrap();
        // Last line is the cut-off fragment: not valid JSON, no newline.
        assert!(!text.ends_with('\n'));
        let last = text.lines().last().unwrap();
        assert!(FromWorker::decode(last).is_err());
    }
}
