//! Matrix factorizations: LU with partial pivoting and Cholesky.

use crate::{LinalgError, Matrix, Vector};

/// LU factorization with partial pivoting of a square matrix.
///
/// Computed by [`Matrix::lu`]; used to solve linear systems `A x = b`.
///
/// # Example
///
/// ```
/// use mfa_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let b = Vector::from(vec![3.0, 5.0]);
/// let x = a.lu()?.solve(&b)?;
/// let r = &a.mul_vec(&x)? - &b;
/// assert!(r.norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]` of
    /// the original.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    sign: f64,
}

impl Lu {
    /// Factors the matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if the matrix is not square or has
    ///   non-finite entries.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "LU input contains non-finite entries".into(),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the row with the largest magnitude in
            // this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-14 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu.get(col, j);
                    lu.set(col, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                for j in (col + 1)..n {
                    lu.add_to(r, j, -factor * lu.get(col, j));
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "system is {n}x{n} but right-hand side has length {}",
                b.len()
            )));
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x.set(i, b.get(self.perm[i]));
        }
        for i in 0..n {
            let mut acc = x.get(i);
            for j in 0..i {
                acc -= self.lu.get(i, j) * x.get(j);
            }
            x.set(i, acc);
        }
        for i in (0..n).rev() {
            let mut acc = x.get(i);
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x.get(j);
            }
            x.set(i, acc / self.lu.get(i, i));
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu.get(i, i);
        }
        det
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Computed by [`Matrix::cholesky`]; the factorization of the Newton system
/// Hessian is the inner kernel of the GP interior-point solver.
///
/// # Example
///
/// ```
/// use mfa_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&Vector::from(vec![2.0, 1.0]))?;
/// assert!((&a.mul_vec(&x)? - &Vector::from(vec![2.0, 1.0])).norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is the caller's responsibility (checked loosely).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if the matrix is not square or has
    ///   non-finite entries.
    /// * [`LinalgError::NotPositiveDefinite`] if a leading minor is not
    ///   positive definite.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument(format!(
                "Cholesky requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "Cholesky input contains non-finite entries".into(),
            ));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "system is {n}x{n} but right-hand side has length {}",
                b.len()
            )));
        }
        // Forward substitution: L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b.get(i);
            for j in 0..i {
                acc -= self.l.get(i, j) * y.get(j);
            }
            y.set(i, acc / self.l.get(i, i));
        }
        // Back substitution: Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y.get(i);
            for j in (i + 1)..n {
                acc -= self.l.get(j, i) * x.get(j);
            }
            x.set(i, acc / self.l.get(i, i));
        }
        Ok(x)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_spd(n: usize, entries: &[f64]) -> Matrix {
        // Build A = Bᵀ B + n·I which is symmetric positive definite.
        let rows: Vec<&[f64]> = entries.chunks(n).take(n).collect();
        let b = Matrix::from_rows(&rows).unwrap();
        let mut a = b.transposed().mul(&b).unwrap();
        for i in 0..n {
            a.add_to(i, i, n as f64);
        }
        a
    }

    #[test]
    fn lu_solves_small_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.0]);
        let x = a.solve(&b).unwrap();
        let expected = Vector::from(vec![1.0, -2.0, -2.0]);
        assert!((&x - &expected).norm_inf() < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_rejects_non_square_and_nan() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(a.lu().is_err());
        let b = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]).unwrap();
        assert!(b.lu().is_err());
    }

    #[test]
    fn lu_determinant_of_identity_is_one() {
        let a = Matrix::identity(5);
        assert!((a.lu().unwrap().determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_determinant_matches_2x2_formula() {
        let a = Matrix::from_rows(&[&[3.0, 7.0], &[2.0, 5.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        assert!((&a.mul_vec(&x).unwrap() - &b).norm_inf() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 4.0]]).unwrap();
        let chol = a.cholesky().unwrap();
        let l = chol.l();
        let reconstructed = l.mul(&l.transposed()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((reconstructed.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(3);
        let b = Vector::zeros(2);
        assert!(a.lu().unwrap().solve(&b).is_err());
        assert!(a.cholesky().unwrap().solve(&b).is_err());
    }

    proptest! {
        #[test]
        fn lu_and_cholesky_agree_on_spd_systems(
            entries in proptest::collection::vec(-3.0..3.0f64, 16..=16),
            rhs in proptest::collection::vec(-5.0..5.0f64, 4..=4)
        ) {
            let a = random_spd(4, &entries);
            let b = Vector::from(rhs);
            let x_lu = a.lu().unwrap().solve(&b).unwrap();
            let x_ch = a.cholesky().unwrap().solve(&b).unwrap();
            prop_assert!((&x_lu - &x_ch).norm_inf() < 1e-8);
        }

        #[test]
        fn lu_solution_residual_is_small(
            entries in proptest::collection::vec(-3.0..3.0f64, 9..=9),
            rhs in proptest::collection::vec(-5.0..5.0f64, 3..=3)
        ) {
            let a = random_spd(3, &entries);
            let b = Vector::from(rhs);
            let x = a.solve(&b).unwrap();
            let residual = (&a.mul_vec(&x).unwrap() - &b).norm_inf();
            prop_assert!(residual < 1e-8, "residual {residual}");
        }
    }
}
