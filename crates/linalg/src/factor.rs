//! Matrix factorizations: LU with partial pivoting, Cholesky, and the
//! reusable [`KktFactorization`] workspace for sequences of closely related
//! symmetric positive-definite systems.

use crate::{LinalgError, Matrix, Vector};

/// Writes the lower-triangular Cholesky factor of `a` into `l`.
///
/// Only the lower triangle of `a` is read and only the lower triangle of `l`
/// is written; `l`'s upper triangle must already be zero. Shared kernel of
/// [`Cholesky::factor`] and [`KktFactorization`].
fn cholesky_lower(a: &Matrix, l: &mut Matrix) -> Result<(), LinalgError> {
    let n = a.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { index: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(())
}

/// Solves `L Lᵀ x = b` by forward and back substitution.
fn cholesky_solve(l: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "system is {n}x{n} but right-hand side has length {}",
            b.len()
        )));
    }
    // Forward substitution: L y = b.
    let mut y = Vector::zeros(n);
    for i in 0..n {
        let mut acc = b.get(i);
        for j in 0..i {
            acc -= l.get(i, j) * y.get(j);
        }
        y.set(i, acc / l.get(i, i));
    }
    // Back substitution: Lᵀ x = y.
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = y.get(i);
        for j in (i + 1)..n {
            acc -= l.get(j, i) * x.get(j);
        }
        x.set(i, acc / l.get(i, i));
    }
    Ok(x)
}

/// LU factorization with partial pivoting of a square matrix.
///
/// Computed by [`Matrix::lu`]; used to solve linear systems `A x = b`.
///
/// # Example
///
/// ```
/// use mfa_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let b = Vector::from(vec![3.0, 5.0]);
/// let x = a.lu()?.solve(&b)?;
/// let r = &a.mul_vec(&x)? - &b;
/// assert!(r.norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]` of
    /// the original.
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    sign: f64,
}

impl Lu {
    /// Factors the matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if the matrix is not square or has
    ///   non-finite entries.
    /// * [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "LU input contains non-finite entries".into(),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the row with the largest magnitude in
            // this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-14 {
                return Err(LinalgError::Singular { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu.get(col, j);
                    lu.set(col, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                for j in (col + 1)..n {
                    lu.add_to(r, j, -factor * lu.get(col, j));
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "system is {n}x{n} but right-hand side has length {}",
                b.len()
            )));
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x.set(i, b.get(self.perm[i]));
        }
        for i in 0..n {
            let mut acc = x.get(i);
            for j in 0..i {
                acc -= self.lu.get(i, j) * x.get(j);
            }
            x.set(i, acc);
        }
        for i in (0..n).rev() {
            let mut acc = x.get(i);
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x.get(j);
            }
            x.set(i, acc / self.lu.get(i, i));
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu.get(i, i);
        }
        det
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Computed by [`Matrix::cholesky`]; the factorization of the Newton system
/// Hessian is the inner kernel of the GP interior-point solver.
///
/// # Example
///
/// ```
/// use mfa_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&Vector::from(vec![2.0, 1.0]))?;
/// assert!((&a.mul_vec(&x)? - &Vector::from(vec![2.0, 1.0])).norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is the caller's responsibility (checked loosely).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if the matrix is not square or has
    ///   non-finite entries.
    /// * [`LinalgError::NotPositiveDefinite`] if a leading minor is not
    ///   positive definite.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument(format!(
                "Cholesky requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "Cholesky input contains non-finite entries".into(),
            ));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n)?;
        cholesky_lower(a, &mut l)?;
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        cholesky_solve(&self.l, b)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Validity of the factor held by a [`KktFactorization`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FactorState {
    /// No matrix has been factored yet.
    Empty,
    /// The stored factor matches the stored matrix.
    Factored,
    /// The last update failed; the factor is unusable until a successful
    /// [`KktFactorization::refactor`] or
    /// [`KktFactorization::refresh_diagonal`].
    Stale,
}

/// A reusable Cholesky workspace for sequences of closely related symmetric
/// positive-definite systems — the KKT/Newton systems of an interior-point
/// solve, where consecutive systems share the structural (curvature) part and
/// differ mainly in the diagonal/barrier terms.
///
/// Unlike [`Cholesky`], which allocates a fresh factor per call, this object
/// owns its matrix and factor buffers and refreshes them in place:
///
/// * [`refactor`](Self::refactor) replaces the stored matrix wholesale and
///   refactors (counted as a *factorization*);
/// * [`refresh_diagonal`](Self::refresh_diagonal) perturbs only the stored
///   diagonal — the barrier/ridge update between neighboring solves — and
///   refactors without touching the off-diagonal entries (counted as a
///   *refresh*).
///
/// The [`factorizations`](Self::factorizations) and
/// [`refreshes`](Self::refreshes) counters record *attempts* (a
/// positive-definiteness failure costs the same work as a success), making
/// them machine-independent effort measures; the GP solver surfaces their sum
/// per solve.
///
/// After a failed update the factor is stale: [`solve`](Self::solve) refuses
/// with [`LinalgError::InvalidArgument`] until a later update succeeds. The
/// intended recovery is a diagonal refresh with a positive ridge, mirroring
/// the interior-point fallback.
///
/// # Example
///
/// ```
/// use mfa_linalg::{KktFactorization, Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let mut kkt = KktFactorization::new(2)?;
/// kkt.refactor(&a)?;
/// let x = kkt.solve(&Vector::from(vec![1.0, 2.0]))?;
/// assert!((&a.mul_vec(&x)? - &Vector::from(vec![1.0, 2.0])).norm_inf() < 1e-12);
/// // A barrier step only strengthens the diagonal: refresh in place.
/// kkt.refresh_diagonal(&[0.5, 0.5])?;
/// assert_eq!(kkt.factorizations(), 1);
/// assert_eq!(kkt.refreshes(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KktFactorization {
    /// The currently stored matrix (lower triangle authoritative).
    a: Matrix,
    /// Lower-triangular Cholesky factor of `a` (when `state == Factored`).
    l: Matrix,
    state: FactorState,
    factorizations: usize,
    refreshes: usize,
}

impl KktFactorization {
    /// Creates an unfactored `n × n` workspace. No numerical work happens
    /// until the first [`refactor`](Self::refactor).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "KKT factorization needs at least one unknown".into(),
            ));
        }
        Ok(KktFactorization {
            a: Matrix::zeros(n, n)?,
            l: Matrix::zeros(n, n)?,
            state: FactorState::Empty,
            factorizations: 0,
            refreshes: 0,
        })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.a.rows()
    }

    /// Replaces the stored matrix with `a` and factors it in place,
    /// incrementing the factorization counter. The workspace is resized if
    /// `a`'s dimension differs from the current one.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square or has
    ///   non-finite entries.
    /// * [`LinalgError::NotPositiveDefinite`] if a leading minor is not
    ///   positive definite; the factor is stale afterwards (recover with
    ///   [`refresh_diagonal`](Self::refresh_diagonal)).
    pub fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument(format!(
                "KKT factorization requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::InvalidArgument(
                "KKT factorization input contains non-finite entries".into(),
            ));
        }
        if a.rows() != self.a.rows() {
            self.a = a.clone();
            self.l = Matrix::zeros(a.rows(), a.rows())?;
        } else {
            self.a.copy_from(a);
        }
        self.factorizations += 1;
        self.state = FactorState::Stale;
        cholesky_lower(&self.a, &mut self.l)?;
        self.state = FactorState::Factored;
        Ok(())
    }

    /// Adds `delta[i]` to the `i`-th diagonal entry of the stored matrix and
    /// refactors in place, incrementing the refresh counter. This is the
    /// cheap path for neighboring interior-point solves, where only the
    /// barrier (diagonal) terms move; off-diagonal entries are untouched and
    /// no buffer is reallocated.
    ///
    /// Deltas accumulate: two refreshes with ridge `r` leave the diagonal at
    /// `+2r`, matching the escalating-ridge recovery loop of the GP solver.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if nothing has been factored yet or
    ///   `delta` contains non-finite entries.
    /// * [`LinalgError::DimensionMismatch`] if `delta`'s length is not the
    ///   system dimension.
    /// * [`LinalgError::NotPositiveDefinite`] if the perturbed matrix is not
    ///   positive definite; the factor stays stale.
    pub fn refresh_diagonal(&mut self, delta: &[f64]) -> Result<(), LinalgError> {
        if self.state == FactorState::Empty {
            return Err(LinalgError::InvalidArgument(
                "refresh_diagonal needs a previously factored matrix".into(),
            ));
        }
        let n = self.a.rows();
        if delta.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "system is {n}x{n} but the diagonal delta has length {}",
                delta.len()
            )));
        }
        if delta.iter().any(|d| !d.is_finite()) {
            return Err(LinalgError::InvalidArgument(
                "diagonal delta contains non-finite entries".into(),
            ));
        }
        for (i, d) in delta.iter().enumerate() {
            self.a.add_to(i, i, *d);
        }
        self.refreshes += 1;
        self.state = FactorState::Stale;
        cholesky_lower(&self.a, &mut self.l)?;
        self.state = FactorState::Factored;
        Ok(())
    }

    /// Solves `A x = b` with the current factor.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if there is no valid factor (never
    ///   factored, or the last update failed).
    /// * [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        match self.state {
            FactorState::Factored => cholesky_solve(&self.l, b),
            FactorState::Empty => Err(LinalgError::InvalidArgument(
                "no matrix has been factored yet".into(),
            )),
            FactorState::Stale => Err(LinalgError::InvalidArgument(
                "factorization is stale after a failed update".into(),
            )),
        }
    }

    /// Number of full factorizations attempted (including failed ones — a
    /// positive-definiteness failure costs the same work).
    pub fn factorizations(&self) -> usize {
        self.factorizations
    }

    /// Number of in-place diagonal refreshes attempted.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_spd(n: usize, entries: &[f64]) -> Matrix {
        // Build A = Bᵀ B + n·I which is symmetric positive definite.
        let rows: Vec<&[f64]> = entries.chunks(n).take(n).collect();
        let b = Matrix::from_rows(&rows).unwrap();
        let mut a = b.transposed().mul(&b).unwrap();
        for i in 0..n {
            a.add_to(i, i, n as f64);
        }
        a
    }

    #[test]
    fn lu_solves_small_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.0]);
        let x = a.solve(&b).unwrap();
        let expected = Vector::from(vec![1.0, -2.0, -2.0]);
        assert!((&x - &expected).norm_inf() < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_rejects_non_square_and_nan() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(a.lu().is_err());
        let b = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]).unwrap();
        assert!(b.lu().is_err());
    }

    #[test]
    fn lu_determinant_of_identity_is_one() {
        let a = Matrix::identity(5);
        assert!((a.lu().unwrap().determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_determinant_matches_2x2_formula() {
        let a = Matrix::from_rows(&[&[3.0, 7.0], &[2.0, 5.0]]).unwrap();
        assert!((a.lu().unwrap().determinant() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        assert!((&a.mul_vec(&x).unwrap() - &b).norm_inf() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 4.0]]).unwrap();
        let chol = a.cholesky().unwrap();
        let l = chol.l();
        let reconstructed = l.mul(&l.transposed()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((reconstructed.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(3);
        let b = Vector::zeros(2);
        assert!(a.lu().unwrap().solve(&b).is_err());
        assert!(a.cholesky().unwrap().solve(&b).is_err());
    }

    #[test]
    fn kkt_solves_and_counts_like_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let mut kkt = KktFactorization::new(3).unwrap();
        assert_eq!(kkt.dim(), 3);
        // Solving before the first refactor is an error, not a panic.
        assert!(kkt.solve(&b).is_err());
        kkt.refactor(&a).unwrap();
        let x = kkt.solve(&b).unwrap();
        let reference = a.cholesky().unwrap().solve(&b).unwrap();
        assert!((&x - &reference).norm_inf() < 1e-14);
        assert_eq!(kkt.factorizations(), 1);
        assert_eq!(kkt.refreshes(), 0);
    }

    #[test]
    fn kkt_diagonal_refresh_matches_a_full_refactor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]).unwrap();
        let b = Vector::from(vec![1.0, -1.0, 2.0]);
        let mut kkt = KktFactorization::new(3).unwrap();
        kkt.refactor(&a).unwrap();
        kkt.refresh_diagonal(&[0.5, 1.0, 0.25]).unwrap();
        // Reference: factor the perturbed matrix from scratch.
        let mut perturbed = a.clone();
        for (i, d) in [0.5, 1.0, 0.25].iter().enumerate() {
            perturbed.add_to(i, i, *d);
        }
        let x = kkt.solve(&b).unwrap();
        let reference = perturbed.cholesky().unwrap().solve(&b).unwrap();
        assert!((&x - &reference).norm_inf() < 1e-14);
        assert_eq!(kkt.factorizations(), 1);
        assert_eq!(kkt.refreshes(), 1);
        // Deltas accumulate across refreshes.
        kkt.refresh_diagonal(&[0.5, 1.0, 0.25]).unwrap();
        for (i, d) in [0.5, 1.0, 0.25].iter().enumerate() {
            perturbed.add_to(i, i, *d);
        }
        let x = kkt.solve(&b).unwrap();
        let reference = perturbed.cholesky().unwrap().solve(&b).unwrap();
        assert!((&x - &reference).norm_inf() < 1e-14);
        assert_eq!(kkt.refreshes(), 2);
    }

    #[test]
    fn kkt_recovers_from_an_indefinite_matrix_via_ridge_refresh() {
        // Indefinite: eigenvalues 3 and -1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let mut kkt = KktFactorization::new(2).unwrap();
        assert!(matches!(
            kkt.refactor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        // Stale factor refuses to solve.
        assert!(kkt.solve(&Vector::zeros(2)).is_err());
        // A large enough ridge restores positive definiteness in place.
        kkt.refresh_diagonal(&[2.0, 2.0]).unwrap();
        let b = Vector::from(vec![1.0, 1.0]);
        let x = kkt.solve(&b).unwrap();
        let mut ridged = a.clone();
        ridged.add_to(0, 0, 2.0);
        ridged.add_to(1, 1, 2.0);
        assert!((&ridged.mul_vec(&x).unwrap() - &b).norm_inf() < 1e-12);
        // Both the failed factorization and the refresh were counted.
        assert_eq!(kkt.factorizations(), 1);
        assert_eq!(kkt.refreshes(), 1);
    }

    #[test]
    fn kkt_refactor_resizes_the_workspace() {
        let mut kkt = KktFactorization::new(2).unwrap();
        let a3 =
            Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 4.0]]).unwrap();
        kkt.refactor(&a3).unwrap();
        assert_eq!(kkt.dim(), 3);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = kkt.solve(&b).unwrap();
        assert!((&a3.mul_vec(&x).unwrap() - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn kkt_validates_inputs() {
        assert!(KktFactorization::new(0).is_err());
        let mut kkt = KktFactorization::new(2).unwrap();
        // Refresh before any factorization is an error.
        assert!(kkt.refresh_diagonal(&[0.1, 0.1]).is_err());
        let rect = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(kkt.refactor(&rect).is_err());
        let nan = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]).unwrap();
        assert!(kkt.refactor(&nan).is_err());
        let spd = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]).unwrap();
        kkt.refactor(&spd).unwrap();
        assert!(kkt.refresh_diagonal(&[0.1]).is_err());
        assert!(kkt.refresh_diagonal(&[f64::NAN, 0.0]).is_err());
        assert!(kkt.solve(&Vector::zeros(3)).is_err());
    }

    proptest! {
        #[test]
        fn kkt_refresh_agrees_with_scratch_factorization(
            entries in proptest::collection::vec(-3.0..3.0f64, 16..=16),
            delta in proptest::collection::vec(0.0..2.0f64, 4..=4),
            rhs in proptest::collection::vec(-5.0..5.0f64, 4..=4)
        ) {
            let a = random_spd(4, &entries);
            let b = Vector::from(rhs);
            let mut kkt = KktFactorization::new(4).unwrap();
            kkt.refactor(&a).unwrap();
            kkt.refresh_diagonal(&delta).unwrap();
            let mut perturbed = a.clone();
            for (i, d) in delta.iter().enumerate() {
                perturbed.add_to(i, i, *d);
            }
            let x = kkt.solve(&b).unwrap();
            let reference = perturbed.cholesky().unwrap().solve(&b).unwrap();
            prop_assert!((&x - &reference).norm_inf() < 1e-10);
        }

        #[test]
        fn lu_and_cholesky_agree_on_spd_systems(
            entries in proptest::collection::vec(-3.0..3.0f64, 16..=16),
            rhs in proptest::collection::vec(-5.0..5.0f64, 4..=4)
        ) {
            let a = random_spd(4, &entries);
            let b = Vector::from(rhs);
            let x_lu = a.lu().unwrap().solve(&b).unwrap();
            let x_ch = a.cholesky().unwrap().solve(&b).unwrap();
            prop_assert!((&x_lu - &x_ch).norm_inf() < 1e-8);
        }

        #[test]
        fn lu_solution_residual_is_small(
            entries in proptest::collection::vec(-3.0..3.0f64, 9..=9),
            rhs in proptest::collection::vec(-5.0..5.0f64, 3..=3)
        ) {
            let a = random_spd(3, &entries);
            let b = Vector::from(rhs);
            let x = a.solve(&b).unwrap();
            let residual = (&a.mul_vec(&x).unwrap() - &b).norm_inf();
            prop_assert!(residual < 1e-8, "residual {residual}");
        }
    }
}
