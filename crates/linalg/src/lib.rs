//! Small, dependency-free dense linear algebra used by the optimization
//! solvers in this workspace.
//!
//! The geometric-programming interior-point solver in [`mfa-gp`] needs dense
//! symmetric solves (Newton systems of a few dozen unknowns), and the simplex
//! implementation in [`mfa-linprog`] needs basic vector/matrix plumbing. This
//! crate provides exactly that: a [`Vector`] and a row-major [`Matrix`],
//! LU factorization with partial pivoting, and Cholesky factorization for
//! symmetric positive-definite systems.
//!
//! The API is intentionally small and allocation-friendly rather than
//! performance-tuned: problem sizes in this workspace are tens of variables,
//! not thousands.
//!
//! # Example
//!
//! ```
//! use mfa_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), mfa_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from(vec![1.0, 2.0]);
//! let x = a.cholesky()?.solve(&b)?;
//! assert!((a.mul_vec(&x)?.get(0) - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`mfa-gp`]: https://example.invalid/multi-fpga-alloc
//! [`mfa-linprog`]: https://example.invalid/multi-fpga-alloc

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod factor;
mod matrix;
mod vector;

pub use error::LinalgError;
pub use factor::{Cholesky, KktFactorization, Lu};
pub use matrix::Matrix;
pub use vector::Vector;
