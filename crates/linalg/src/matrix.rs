//! Dense row-major matrix type.

use std::fmt;

use crate::factor::{Cholesky, Lu};
use crate::{LinalgError, Vector};

/// A dense row-major matrix of `f64` entries.
///
/// # Example
///
/// ```
/// use mfa_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mfa_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let x = Vector::from(vec![1.0, 2.0, 3.0]);
/// assert_eq!(a.mul_vec(&x)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument(format!(
                "matrix dimensions must be nonzero, got {rows}x{cols}"
            )));
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n).expect("identity dimension must be nonzero");
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `rows` is empty or the rows
    /// have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidArgument(
                "from_rows requires at least one nonempty row".into(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {i} has length {} but expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] += value;
    }

    /// Copies `other`'s entries into this matrix without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "copy_from requires matching shapes"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out.set(i, acc);
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, x: &Vector) -> Result<Vector, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x.get(i);
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for j in 0..self.cols {
                out[j] += row[j] * xi;
            }
        }
        Ok(out)
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "{}x{} times {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows).expect("nonzero dims");
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns `true` if the matrix is symmetric within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] for non-square matrices and
    /// [`LinalgError::Singular`] if a zero pivot is encountered.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::factor(self)
    }

    /// Cholesky factorization (`A = L Lᵀ`) of a symmetric positive-definite
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a nonpositive pivot is
    /// encountered, and [`LinalgError::InvalidArgument`] for non-square input.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::factor(self)
    }

    /// Solves `A x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        self.lu()?.solve(b)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_rejects_empty_dimensions() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn identity_times_vector_is_identity() {
        let a = Matrix::identity(4);
        let x = Vector::from(vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(a.mul_vec(&x).unwrap(), x);
    }

    #[test]
    fn mul_vec_checks_dimensions() {
        let a = Matrix::identity(3);
        let x = Vector::zeros(2);
        assert!(a.mul_vec(&x).is_err());
    }

    #[test]
    fn matrix_multiplication_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        let r = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(!r.is_symmetric(1e-12));
    }

    #[test]
    fn mul_vec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x = Vector::from(vec![1.0, -1.0]);
        let expected = a.transposed().mul_vec(&x).unwrap();
        let got = a.mul_vec_transposed(&x).unwrap();
        assert_eq!(expected, got);
    }

    proptest! {
        #[test]
        fn transpose_is_involutive(
            entries in proptest::collection::vec(-10.0..10.0f64, 12..=12)
        ) {
            let rows: Vec<&[f64]> = entries.chunks(4).collect();
            let a = Matrix::from_rows(&rows).unwrap();
            prop_assert_eq!(a.transposed().transposed(), a);
        }

        #[test]
        fn frobenius_norm_nonnegative_and_zero_only_for_zero(
            entries in proptest::collection::vec(-10.0..10.0f64, 9..=9)
        ) {
            let rows: Vec<&[f64]> = entries.chunks(3).collect();
            let a = Matrix::from_rows(&rows).unwrap();
            let n = a.norm_frobenius();
            prop_assert!(n >= 0.0);
            if entries.iter().any(|x| x.abs() > 1e-9) {
                prop_assert!(n > 0.0);
            }
        }
    }
}
