//! Error type shared by all linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands have incompatible dimensions.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch(String),
    /// A factorization or solve hit a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// Cholesky factorization was attempted on a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite {
        /// Row/column index at which the leading minor failed.
        index: usize,
    },
    /// An argument was invalid (empty matrix, zero dimension, NaN entry, …).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite (failure at index {index})"
                )
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(LinalgError, &str)> = vec![
            (
                LinalgError::DimensionMismatch("3x3 vs 2".into()),
                "dimension mismatch",
            ),
            (LinalgError::Singular { pivot: 4 }, "singular"),
            (
                LinalgError::NotPositiveDefinite { index: 1 },
                "not positive definite",
            ),
            (
                LinalgError::InvalidArgument("empty".into()),
                "invalid argument",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} should contain {needle}");
            assert!(!text.ends_with('.'), "no trailing punctuation: {text}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
