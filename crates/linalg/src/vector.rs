//! Dense vector type.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A dense column vector of `f64` entries.
///
/// # Example
///
/// ```
/// use mfa_linalg::Vector;
///
/// let v = Vector::from(vec![1.0, 2.0, 2.0]);
/// assert_eq!(v.len(), 3);
/// assert!((v.norm2() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Sets entry `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: f64) {
        self.data[i] = value;
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch(format!(
                "dot of lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (infinity norm); zero for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns a new vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<(), LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch(format!(
                "axpy of lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `true` if every entry is finite (no NaN or ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector += length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector -= length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_filled() {
        let z = Vector::zeros(4);
        assert_eq!(z.len(), 4);
        assert_eq!(z.norm2(), 0.0);
        let f = Vector::filled(3, 2.0);
        assert_eq!(f.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!((a.norm2() - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.norm_inf(), 3.0);
    }

    #[test]
    fn dot_dimension_mismatch_errors() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(a.dot(&b), Err(LinalgError::DimensionMismatch(_))));
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn collects_from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from(vec![1.0, f64::NAN]);
        assert!(!v.is_finite());
        let w = Vector::from(vec![1.0, 2.0]);
        assert!(w.is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![1.0, -2.5]);
        let s = v.to_string();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("-2.5"));
    }

    proptest! {
        #[test]
        fn dot_is_commutative(xs in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            let a = Vector::from(xs);
            let b = Vector::from(ys);
            let ab = a.dot(&b).unwrap();
            let ba = b.dot(&a).unwrap();
            prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
        }

        #[test]
        fn cauchy_schwarz(xs in proptest::collection::vec(-50.0..50.0f64, 1..16),
                          scale in -2.0..2.0f64) {
            let ys: Vec<f64> = xs.iter().rev().map(|x| x * scale).collect();
            let a = Vector::from(xs);
            let b = Vector::from(ys);
            let dot = a.dot(&b).unwrap().abs();
            prop_assert!(dot <= a.norm2() * b.norm2() + 1e-6);
        }

        #[test]
        fn norm_inf_bounds_norm2(xs in proptest::collection::vec(-50.0..50.0f64, 1..16)) {
            let v = Vector::from(xs.clone());
            let n = xs.len() as f64;
            prop_assert!(v.norm_inf() <= v.norm2() + 1e-9);
            prop_assert!(v.norm2() <= n.sqrt() * v.norm_inf() + 1e-9);
        }
    }
}
