//! Monomial and posynomial expressions over positive variables.

use std::fmt;

use crate::model::GpVarId;

/// A monomial `c · Π xⱼ^{aⱼ}` with a strictly positive coefficient `c`.
///
/// Exponents may be any real number (positive, negative, fractional).
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    coeff: f64,
    /// `(variable, exponent)` pairs, at most one entry per variable.
    exponents: Vec<(GpVarId, f64)>,
}

impl Monomial {
    /// Creates a monomial from a coefficient and `(variable, exponent)` pairs.
    ///
    /// Duplicate variables have their exponents summed; zero exponents are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `coeff` is not strictly positive and finite (posynomial
    /// algebra requires positive coefficients). Use
    /// [`Monomial::try_new`] for a fallible constructor.
    pub fn new(coeff: f64, exponents: &[(GpVarId, f64)]) -> Self {
        Monomial::try_new(coeff, exponents)
            .expect("monomial coefficient must be strictly positive and finite")
    }

    /// Fallible variant of [`Monomial::new`].
    ///
    /// Returns `None` if `coeff` is not strictly positive and finite or an
    /// exponent is not finite.
    pub fn try_new(coeff: f64, exponents: &[(GpVarId, f64)]) -> Option<Self> {
        if !(coeff.is_finite() && coeff > 0.0) {
            return None;
        }
        let mut combined: Vec<(GpVarId, f64)> = Vec::with_capacity(exponents.len());
        for &(v, e) in exponents {
            if !e.is_finite() {
                return None;
            }
            match combined.iter_mut().find(|(existing, _)| *existing == v) {
                Some((_, acc)) => *acc += e,
                None => combined.push((v, e)),
            }
        }
        combined.retain(|&(_, e)| e != 0.0);
        combined.sort_by_key(|&(v, _)| v);
        Some(Monomial {
            coeff,
            exponents: combined,
        })
    }

    /// A constant monomial.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not strictly positive and finite.
    pub fn constant(value: f64) -> Self {
        Monomial::new(value, &[])
    }

    /// The coefficient `c`.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The `(variable, exponent)` pairs, sorted by variable.
    pub fn exponents(&self) -> &[(GpVarId, f64)] {
        &self.exponents
    }

    /// Evaluates the monomial at the given variable assignment.
    ///
    /// `values[v.index()]` must be the (positive) value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is too short.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = self.coeff;
        for &(v, e) in &self.exponents {
            acc *= values[v.index()].powf(e);
        }
        acc
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exponents.clone();
        for &(v, e) in &other.exponents {
            match exps.iter_mut().find(|(existing, _)| *existing == v) {
                Some((_, acc)) => *acc += e,
                None => exps.push((v, e)),
            }
        }
        exps.retain(|&(_, e)| e != 0.0);
        exps.sort_by_key(|&(v, _)| v);
        Monomial {
            coeff: self.coeff * other.coeff,
            exponents: exps,
        }
    }

    /// Monomial raised to a power (valid for any real exponent).
    pub fn powf(&self, power: f64) -> Monomial {
        Monomial {
            coeff: self.coeff.powf(power),
            exponents: self
                .exponents
                .iter()
                .map(|&(v, e)| (v, e * power))
                .filter(|&(_, e)| e != 0.0)
                .collect(),
        }
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.exponents.iter().map(|&(v, _)| v.index()).max()
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.coeff)?;
        for &(v, e) in &self.exponents {
            write!(f, "·x{}^{e:.3}", v.index())?;
        }
        Ok(())
    }
}

/// A posynomial: a sum of [`Monomial`]s.
///
/// The empty posynomial (zero terms) is allowed during construction but is
/// rejected by the model validation since `0 ≤ 1` constraints and zero
/// objectives are not meaningful GPs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Posynomial {
    terms: Vec<Monomial>,
}

impl Posynomial {
    /// Creates an empty posynomial (no terms).
    pub fn new() -> Self {
        Posynomial { terms: Vec::new() }
    }

    /// Creates a posynomial consisting of a single monomial
    /// `coeff · Π x^{e}`.
    ///
    /// # Panics
    ///
    /// Panics if `coeff` is not strictly positive and finite.
    pub fn monomial(coeff: f64, exponents: &[(GpVarId, f64)]) -> Self {
        Posynomial {
            terms: vec![Monomial::new(coeff, exponents)],
        }
    }

    /// Creates a constant posynomial.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not strictly positive and finite.
    pub fn constant(value: f64) -> Self {
        Posynomial {
            terms: vec![Monomial::constant(value)],
        }
    }

    /// Adds a monomial term.
    pub fn push(&mut self, term: Monomial) {
        self.terms.push(term);
    }

    /// Adds a monomial term, builder style.
    #[must_use]
    pub fn with_term(mut self, term: Monomial) -> Self {
        self.push(term);
        self
    }

    /// The monomial terms.
    pub fn terms(&self) -> &[Monomial] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the posynomial is a single monomial.
    pub fn is_monomial(&self) -> bool {
        self.terms.len() == 1
    }

    /// Evaluates the posynomial at the given variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values` is too short for some referenced variable.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(values)).sum()
    }

    /// Sum of two posynomials.
    pub fn add(&self, other: &Posynomial) -> Posynomial {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Posynomial { terms }
    }

    /// Product with a monomial (posynomials are closed under this).
    pub fn mul_monomial(&self, m: &Monomial) -> Posynomial {
        Posynomial {
            terms: self.terms.iter().map(|t| t.mul(m)).collect(),
        }
    }

    /// Multiplies every coefficient by a positive scalar.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Posynomial {
        self.mul_monomial(&Monomial::constant(factor))
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.iter().filter_map(Monomial::max_var_index).max()
    }
}

impl From<Monomial> for Posynomial {
    fn from(m: Monomial) -> Self {
        Posynomial { terms: vec![m] }
    }
}

impl FromIterator<Monomial> for Posynomial {
    fn from_iter<I: IntoIterator<Item = Monomial>>(iter: I) -> Self {
        Posynomial {
            terms: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Posynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GpVarId;
    use proptest::prelude::*;

    fn v(i: usize) -> GpVarId {
        GpVarId::from_index(i)
    }

    #[test]
    fn monomial_combines_duplicate_variables() {
        let m = Monomial::new(2.0, &[(v(0), 1.0), (v(0), 2.0), (v(1), -1.0)]);
        assert_eq!(m.exponents(), &[(v(0), 3.0), (v(1), -1.0)]);
        assert_eq!(m.coeff(), 2.0);
    }

    #[test]
    fn monomial_rejects_nonpositive_coefficient() {
        assert!(Monomial::try_new(0.0, &[]).is_none());
        assert!(Monomial::try_new(-1.0, &[]).is_none());
        assert!(Monomial::try_new(f64::NAN, &[]).is_none());
        assert!(Monomial::try_new(1.0, &[(v(0), f64::INFINITY)]).is_none());
    }

    #[test]
    fn monomial_eval_matches_formula() {
        let m = Monomial::new(3.0, &[(v(0), 2.0), (v(1), -1.0)]);
        // 3 · 2² · 4⁻¹ = 3.
        assert!((m.eval(&[2.0, 4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn monomial_mul_and_pow() {
        let a = Monomial::new(2.0, &[(v(0), 1.0)]);
        let b = Monomial::new(3.0, &[(v(0), 2.0), (v(1), 1.0)]);
        let ab = a.mul(&b);
        assert_eq!(ab.coeff(), 6.0);
        assert_eq!(ab.exponents(), &[(v(0), 3.0), (v(1), 1.0)]);
        let sq = a.powf(2.0);
        assert_eq!(sq.coeff(), 4.0);
        assert_eq!(sq.exponents(), &[(v(0), 2.0)]);
        // Inverse of a monomial is a monomial.
        let inv = b.powf(-1.0);
        assert!((inv.eval(&[2.0, 5.0]) * b.eval(&[2.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posynomial_eval_is_sum_of_terms() {
        let p =
            Posynomial::monomial(1.0, &[(v(0), 1.0)]).with_term(Monomial::new(2.0, &[(v(1), 2.0)]));
        assert!((p.eval(&[3.0, 2.0]) - 11.0).abs() < 1e-12);
        assert_eq!(p.len(), 2);
        assert!(!p.is_monomial());
    }

    #[test]
    fn posynomial_algebra() {
        let a = Posynomial::monomial(1.0, &[(v(0), 1.0)]);
        let b = Posynomial::monomial(2.0, &[(v(1), 1.0)]);
        let sum = a.add(&b);
        assert_eq!(sum.len(), 2);
        let scaled = sum.scaled(3.0);
        assert!((scaled.eval(&[1.0, 1.0]) - 9.0).abs() < 1e-12);
        let shifted = sum.mul_monomial(&Monomial::new(1.0, &[(v(0), -1.0)]));
        assert!((shifted.eval(&[2.0, 4.0]) - (1.0 + 2.0 * 4.0 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn max_var_index_reports_largest_reference() {
        let p = Posynomial::monomial(1.0, &[(v(3), 1.0)])
            .with_term(Monomial::new(1.0, &[(v(7), -2.0)]));
        assert_eq!(p.max_var_index(), Some(7));
        assert_eq!(Posynomial::constant(1.0).max_var_index(), None);
        assert_eq!(Posynomial::new().max_var_index(), None);
    }

    #[test]
    fn display_shows_terms() {
        let p = Posynomial::monomial(2.0, &[(v(0), 1.0)]).with_term(Monomial::constant(1.0));
        let text = p.to_string();
        assert!(text.contains(" + "));
        assert!(text.contains("x0"));
        assert_eq!(Posynomial::new().to_string(), "0");
    }

    proptest! {
        #[test]
        fn monomial_product_evaluates_to_product_of_evals(
            c1 in 0.1..10.0f64, c2 in 0.1..10.0f64,
            e1 in -3.0..3.0f64, e2 in -3.0..3.0f64,
            x in 0.2..5.0f64, y in 0.2..5.0f64
        ) {
            let a = Monomial::new(c1, &[(v(0), e1)]);
            let b = Monomial::new(c2, &[(v(0), e2), (v(1), 1.0)]);
            let vals = [x, y];
            let lhs = a.mul(&b).eval(&vals);
            let rhs = a.eval(&vals) * b.eval(&vals);
            prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
        }

        #[test]
        fn posynomial_values_are_positive(
            coeffs in proptest::collection::vec(0.1..5.0f64, 1..6),
            x in 0.1..10.0f64
        ) {
            let p: Posynomial = coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| Monomial::new(c, &[(v(0), i as f64 - 2.0)]))
                .collect();
            prop_assert!(p.eval(&[x]) > 0.0);
        }
    }
}
