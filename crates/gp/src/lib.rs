//! Geometric programming: posynomial modeling plus a log-barrier
//! interior-point solver.
//!
//! The heuristic of the reproduced paper (Shan et al., DAC 2019) solves a
//! relaxed compute-unit-count problem as a *geometric program* (GP). The
//! original work used GPkit; this crate is the in-repo substitute. It offers:
//!
//! * [`Monomial`] / [`Posynomial`] expression types over named positive
//!   variables,
//! * a [`GpProblem`] builder (`minimize posynomial` subject to
//!   `posynomial ≤ 1` constraints),
//! * a solver that applies the standard log-space transform (making the
//!   problem convex) and runs a log-barrier Newton interior-point method,
//!   using [`mfa_linalg`] for the Newton systems.
//!
//! # Example
//!
//! ```
//! use mfa_gp::{GpProblem, Posynomial};
//!
//! # fn main() -> Result<(), mfa_gp::GpError> {
//! // minimize 1/(x·y) subject to x ≤ 2 and y ≤ 3 (optimum 1/6 at (2, 3)).
//! let mut gp = GpProblem::new();
//! let x = gp.add_var("x")?;
//! let y = gp.add_var("y")?;
//! gp.set_objective(Posynomial::monomial(1.0, &[(x, -1.0), (y, -1.0)]));
//! gp.add_le_constraint("x ≤ 2", Posynomial::monomial(1.0 / 2.0, &[(x, 1.0)]))?;
//! gp.add_le_constraint("y ≤ 3", Posynomial::monomial(1.0 / 3.0, &[(y, 1.0)]))?;
//! let sol = gp.solve()?;
//! assert!((sol.value(x) - 2.0).abs() < 1e-4);
//! assert!((sol.objective() - 1.0 / 6.0).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod model;
mod solver;

pub use error::GpError;
pub use expr::{Monomial, Posynomial};
pub use model::{GpProblem, GpVarId};
pub use solver::{GpDualState, GpSolution, SolverOptions};
