//! GP problem builder.

use crate::expr::Posynomial;
use crate::solver::{self, GpSolution, SolverOptions};
use crate::GpError;

/// Handle to a (strictly positive) GP decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpVarId(usize);

impl GpVarId {
    /// Index of the variable in creation order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a handle from a raw index.
    ///
    /// Exposed for tests and for callers that serialize variable indices;
    /// passing an index that does not belong to the target problem results in
    /// an [`GpError::UnknownVariable`] at validation time.
    pub fn from_index(index: usize) -> Self {
        GpVarId(index)
    }
}

/// A constraint `posynomial ≤ 1`.
#[derive(Debug, Clone)]
pub(crate) struct GpConstraint {
    pub(crate) name: String,
    pub(crate) posy: Posynomial,
}

/// A geometric program in standard form:
/// minimize a posynomial subject to `posynomial ≤ 1` constraints over
/// strictly positive variables.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default)]
pub struct GpProblem {
    pub(crate) var_names: Vec<String>,
    pub(crate) objective: Option<Posynomial>,
    pub(crate) constraints: Vec<GpConstraint>,
}

impl GpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        GpProblem::default()
    }

    /// Adds a strictly positive decision variable.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidArgument`] if the name is empty.
    pub fn add_var(&mut self, name: impl Into<String>) -> Result<GpVarId, GpError> {
        let name = name.into();
        if name.is_empty() {
            return Err(GpError::InvalidArgument(
                "variable name must not be empty".into(),
            ));
        }
        self.var_names.push(name);
        Ok(GpVarId(self.var_names.len() - 1))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::UnknownVariable`] for a foreign handle.
    pub fn var_name(&self, var: GpVarId) -> Result<&str, GpError> {
        self.var_names
            .get(var.0)
            .map(String::as_str)
            .ok_or(GpError::UnknownVariable(var.0))
    }

    /// Sets the posynomial objective to minimize.
    pub fn set_objective(&mut self, objective: Posynomial) {
        self.objective = Some(objective);
    }

    /// Adds the constraint `posy ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidArgument`] if the posynomial has no terms and
    /// [`GpError::UnknownVariable`] if it references a variable that was not
    /// added to this problem.
    pub fn add_le_constraint(
        &mut self,
        name: impl Into<String>,
        posy: Posynomial,
    ) -> Result<(), GpError> {
        let name = name.into();
        if posy.is_empty() {
            return Err(GpError::InvalidArgument(format!(
                "constraint {name} has no terms"
            )));
        }
        if let Some(max_idx) = posy.max_var_index() {
            if max_idx >= self.var_names.len() {
                return Err(GpError::UnknownVariable(max_idx));
            }
        }
        self.constraints.push(GpConstraint { name, posy });
        Ok(())
    }

    /// Validates the model (objective present, every expression references
    /// only known variables, no empty posynomials).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), GpError> {
        let objective = self.objective.as_ref().ok_or(GpError::MissingObjective)?;
        if objective.is_empty() {
            return Err(GpError::InvalidArgument("objective has no terms".into()));
        }
        if let Some(max_idx) = objective.max_var_index() {
            if max_idx >= self.var_names.len() {
                return Err(GpError::UnknownVariable(max_idx));
            }
        }
        for c in &self.constraints {
            if c.posy.is_empty() {
                return Err(GpError::InvalidArgument(format!(
                    "constraint {} has no terms",
                    c.name
                )));
            }
            if let Some(max_idx) = c.posy.max_var_index() {
                if max_idx >= self.var_names.len() {
                    return Err(GpError::UnknownVariable(max_idx));
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors and solver failures; see [`GpError`].
    pub fn solve(&self) -> Result<GpSolution, GpError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// Propagates validation errors and solver failures; see [`GpError`].
    pub fn solve_with(&self, options: &SolverOptions) -> Result<GpSolution, GpError> {
        self.validate()?;
        solver::solve(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Posynomial;

    #[test]
    fn add_var_and_names() {
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        assert_eq!(gp.var_name(x).unwrap(), "x");
        assert_eq!(gp.num_vars(), 1);
        assert!(gp.add_var("").is_err());
        assert!(gp.var_name(GpVarId(5)).is_err());
    }

    #[test]
    fn validation_requires_objective() {
        let gp = GpProblem::new();
        assert_eq!(gp.validate(), Err(GpError::MissingObjective));
    }

    #[test]
    fn validation_rejects_foreign_variables() {
        let mut gp = GpProblem::new();
        let _x = gp.add_var("x").unwrap();
        let ghost = GpVarId::from_index(3);
        gp.set_objective(Posynomial::monomial(1.0, &[(ghost, 1.0)]));
        assert!(matches!(gp.validate(), Err(GpError::UnknownVariable(3))));
    }

    #[test]
    fn constraint_validation() {
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        assert!(gp.add_le_constraint("empty", Posynomial::new()).is_err());
        assert!(gp
            .add_le_constraint("ok", Posynomial::monomial(0.5, &[(x, 1.0)]))
            .is_ok());
        assert!(gp
            .add_le_constraint(
                "foreign",
                Posynomial::monomial(1.0, &[(GpVarId::from_index(9), 1.0)])
            )
            .is_err());
        assert_eq!(gp.num_constraints(), 1);
    }
}
