//! Log-barrier interior-point solver for geometric programs.
//!
//! The GP is transformed to its convex log-space form: with `y = ln x`, every
//! posynomial `Σ c_t Π x^{a_t}` becomes the log-sum-exp function
//! `F(y) = log Σ exp(a_t·y + ln c_t)`, which is convex. The problem
//! `min F₀(y) s.t. F_i(y) ≤ 0` is then solved with a standard barrier method
//! (Newton inner iterations with backtracking line search, geometric increase
//! of the barrier parameter), preceded by a phase-I search for a strictly
//! feasible point.

use mfa_linalg::{KktFactorization, LinalgError, Matrix, Vector};

use crate::expr::Posynomial;
use crate::model::{GpProblem, GpVarId};
use crate::GpError;

/// Dual state of a completed barrier solve: the final barrier parameter and
/// the dual estimates `λ_i = 1 / (t · (−F_i(y*)))` of the problem's explicit
/// constraints, in declaration order (the solver's implicit box constraints
/// are excluded).
///
/// Feeding a prior solution's dual state into
/// [`SolverOptions::initial_dual`] lets a neighboring solve start phase II
/// near the previous barrier parameter instead of walking the whole central
/// path from [`SolverOptions::initial_barrier`] — the *dual* half of a warm
/// start, complementing the primal [`SolverOptions::initial_point`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpDualState {
    /// Final barrier parameter `t` of the producing solve.
    pub barrier_t: f64,
    /// Dual estimates for the explicit constraints, in declaration order.
    pub duals: Vec<f64>,
}

/// Options controlling the interior-point solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Target duality-gap tolerance (`m / t < tolerance` stops the outer loop).
    pub tolerance: f64,
    /// Newton decrement threshold for the inner iteration.
    pub newton_tolerance: f64,
    /// Multiplicative increase of the barrier parameter per outer iteration.
    pub barrier_growth: f64,
    /// Initial barrier parameter.
    pub initial_barrier: f64,
    /// Maximum Newton steps per centering problem.
    pub max_newton_iterations: usize,
    /// Maximum outer (barrier) iterations.
    pub max_outer_iterations: usize,
    /// Implicit lower bound applied to every variable.
    ///
    /// GP variables are strictly positive but otherwise unbounded, which can
    /// make the barrier subproblems unbounded along directions that only
    /// increase constraint slack. The solver therefore restricts every
    /// variable to `[variable_lower, variable_upper]`; the defaults
    /// (`1e-9`, `1e9`) are far outside the value range of any model in this
    /// workspace. Widen them if your optimum genuinely lies outside.
    pub variable_lower: f64,
    /// Implicit upper bound applied to every variable (see
    /// [`variable_lower`](SolverOptions::variable_lower)).
    pub variable_upper: f64,
    /// Optional warm-start point in the original (positive) variable space,
    /// one value per variable in creation order.
    ///
    /// When the point is strictly feasible for every constraint (including
    /// the implicit box bounds), the barrier path starts there and phase I is
    /// skipped entirely — the usual win when re-solving a neighbouring
    /// problem, e.g. an adjacent constraint point of a design-space sweep.
    /// A missing, wrong-length, non-positive, non-finite, or infeasible
    /// point is ignored and the solver falls back to the cold phase-I start,
    /// so a stale hint can never change feasibility or the reported optimum
    /// beyond solver tolerance. [`GpSolution::warm_started`] reports whether
    /// the hint was actually taken.
    pub initial_point: Option<Vec<f64>>,
    /// Optional dual warm start: the final barrier parameter and constraint
    /// duals of a prior solve (see [`GpSolution::dual_state`]).
    ///
    /// Only consumed when [`initial_point`](SolverOptions::initial_point) was
    /// accepted — the dual state describes the central path near that point.
    /// When taken, phase II starts at a barrier parameter derived from the
    /// surrogate duality gap `Σ λ_i · (−F_i(y_warm))` (clamped to
    /// `[initial_barrier, barrier_t]`) instead of
    /// [`initial_barrier`](SolverOptions::initial_barrier), skipping the
    /// early centering path entirely. A dual state with the wrong number of
    /// duals, non-finite or negative entries, or an out-of-range `barrier_t`
    /// is ignored; like a stale primal hint, a stale dual hint can only cost
    /// extra iterations, never change the reported optimum beyond solver
    /// tolerance. [`GpSolution::dual_warm_started`] reports whether it was
    /// taken.
    pub initial_dual: Option<GpDualState>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-8,
            newton_tolerance: 1e-10,
            barrier_growth: 20.0,
            initial_barrier: 1.0,
            max_newton_iterations: 80,
            max_outer_iterations: 60,
            variable_lower: 1e-9,
            variable_upper: 1e9,
            initial_point: None,
            initial_dual: None,
        }
    }
}

impl SolverOptions {
    /// Default options warm-started from `point` (see
    /// [`SolverOptions::initial_point`]).
    pub fn warm_started(point: Vec<f64>) -> Self {
        SolverOptions {
            initial_point: Some(point),
            ..SolverOptions::default()
        }
    }

    /// Default options warm-started from `point` with the dual state of a
    /// prior solve (see [`SolverOptions::initial_dual`]).
    pub fn warm_started_with_duals(point: Vec<f64>, dual: GpDualState) -> Self {
        SolverOptions {
            initial_point: Some(point),
            initial_dual: Some(dual),
            ..SolverOptions::default()
        }
    }
}

/// Solution of a [`GpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpSolution {
    values: Vec<f64>,
    objective: f64,
    newton_iterations: usize,
    warm_started: bool,
    dual_warm_started: bool,
    barrier_iterations: usize,
    factorizations: usize,
    dual_state: Option<GpDualState>,
}

impl GpSolution {
    /// Optimal value of a variable (in the original, positive space).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: GpVarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, in creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Total number of Newton steps across phase I and phase II.
    pub fn newton_iterations(&self) -> usize {
        self.newton_iterations
    }

    /// `true` when the solve started from a strictly feasible
    /// [`SolverOptions::initial_point`] (phase I skipped).
    pub fn warm_started(&self) -> bool {
        self.warm_started
    }

    /// `true` when a valid [`SolverOptions::initial_dual`] set the starting
    /// barrier parameter (the early centering path was skipped).
    pub fn dual_warm_started(&self) -> bool {
        self.dual_warm_started
    }

    /// Number of barrier centering problems solved, phase I and phase II
    /// combined — the machine-independent outer-iteration effort count.
    pub fn barrier_iterations(&self) -> usize {
        self.barrier_iterations
    }

    /// Number of KKT Cholesky factorization attempts across the solve: full
    /// refactorizations plus in-place diagonal (ridge) refreshes, failed
    /// attempts included. Each corresponds to one Newton system; together
    /// with [`barrier_iterations`](Self::barrier_iterations) this measures
    /// solve effort independently of the machine.
    pub fn factorizations(&self) -> usize {
        self.factorizations
    }

    /// Final barrier parameter and constraint duals, for warm-starting a
    /// neighboring solve via [`SolverOptions::initial_dual`]. `None` only
    /// for constant (variable-free) problems.
    pub fn dual_state(&self) -> Option<&GpDualState> {
        self.dual_state.as_ref()
    }
}

/// A posynomial in log-space: `F(y) = log Σ_t exp(a_t · y + b_t)`.
#[derive(Debug, Clone)]
struct LogSumExp {
    /// One row per monomial term: sparse exponent vector and `ln(coeff)`.
    terms: Vec<(Vec<(usize, f64)>, f64)>,
}

impl LogSumExp {
    fn from_posynomial(p: &Posynomial) -> Self {
        let terms = p
            .terms()
            .iter()
            .map(|m| {
                let a: Vec<(usize, f64)> =
                    m.exponents().iter().map(|&(v, e)| (v.index(), e)).collect();
                (a, m.coeff().ln())
            })
            .collect();
        LogSumExp { terms }
    }

    /// `true` if the function is affine in `y` (single monomial).
    fn is_affine(&self) -> bool {
        self.terms.len() == 1
    }

    fn value(&self, y: &Vector) -> f64 {
        let zs: Vec<f64> = self
            .terms
            .iter()
            .map(|(a, b)| a.iter().map(|&(j, e)| e * y.get(j)).sum::<f64>() + b)
            .collect();
        log_sum_exp(&zs)
    }

    /// Evaluates value, gradient and (optionally) Hessian contributions at `y`.
    ///
    /// The gradient buffer receives `grad_scale · ∇F`; the Hessian buffer (if
    /// provided) receives `curvature_scale · ∇²F + rank_one_scale · ∇F ∇Fᵀ`.
    /// Accumulating lets callers assemble barrier combinations without
    /// temporaries.
    fn accumulate(
        &self,
        y: &Vector,
        grad_scale: f64,
        grad: &mut Vector,
        hess: Option<(&mut Matrix, f64, f64)>,
    ) -> f64 {
        let zs: Vec<f64> = self
            .terms
            .iter()
            .map(|(a, b)| a.iter().map(|&(j, e)| e * y.get(j)).sum::<f64>() + b)
            .collect();
        let value = log_sum_exp(&zs);
        // Softmax weights.
        let weights: Vec<f64> = zs.iter().map(|z| (z - value).exp()).collect();

        // g = Σ w_t a_t.
        let n = y.len();
        let mut local_grad = vec![0.0; n];
        for ((a, _), w) in self.terms.iter().zip(weights.iter()) {
            for &(j, e) in a {
                local_grad[j] += w * e;
            }
        }
        if grad_scale != 0.0 {
            for j in 0..n {
                grad[j] += grad_scale * local_grad[j];
            }
        }
        if let Some((h, curvature_scale, rank_one_scale)) = hess {
            // ∇²F = Σ w_t a_t a_tᵀ − g gᵀ for log-sum-exp (zero when affine).
            if curvature_scale != 0.0 && !self.is_affine() {
                for ((a, _), w) in self.terms.iter().zip(weights.iter()) {
                    for &(j1, e1) in a {
                        for &(j2, e2) in a {
                            h.add_to(j1, j2, curvature_scale * w * e1 * e2);
                        }
                    }
                }
            }
            // Combined g gᵀ coefficient: −curvature (from ∇²F) + rank-one.
            let combined = rank_one_scale
                - if self.is_affine() {
                    0.0
                } else {
                    curvature_scale
                };
            if combined != 0.0 {
                for j1 in 0..n {
                    if local_grad[j1] == 0.0 {
                        continue;
                    }
                    for j2 in 0..n {
                        h.add_to(j1, j2, combined * local_grad[j1] * local_grad[j2]);
                    }
                }
            }
        }
        value
    }
}

fn log_sum_exp(zs: &[f64]) -> f64 {
    let max = zs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if !max.is_finite() {
        return max;
    }
    max + zs.iter().map(|z| (z - max).exp()).sum::<f64>().ln()
}

/// Internal convex problem: minimize `objective(y)` subject to
/// `constraints[i](y) ≤ 0`, all functions log-sum-exp (affine allowed).
struct ConvexProgram {
    objective: LogSumExp,
    constraints: Vec<LogSumExp>,
    n: usize,
}

impl ConvexProgram {
    /// Barrier centering: minimize `t·f0(y) − Σ log(−f_i(y))` by Newton.
    /// Returns the number of Newton steps. `y` must be strictly feasible.
    ///
    /// Every Newton system is factored through the caller's reusable `kkt`
    /// workspace: full refactorizations for the fresh Hessian of each step,
    /// in-place diagonal refreshes for the ridge fallback on near-singular
    /// Hessians. The workspace's counters therefore accumulate the solve's
    /// factorization effort.
    fn center(
        &self,
        y: &mut Vector,
        t: f64,
        options: &SolverOptions,
        kkt: &mut KktFactorization,
    ) -> Result<usize, GpError> {
        let mut steps = 0;
        for _ in 0..options.max_newton_iterations {
            let (phi, grad, hess) = self.barrier_derivatives(y, t)?;
            // Solve H Δ = −g with a ridge fallback for near-singular
            // Hessians; the ridge only touches the diagonal, so the fallback
            // is an in-place refresh rather than a second factorization from
            // scratch.
            let step = match kkt.refactor(&hess) {
                Ok(()) => kkt.solve(&(-&grad)).map_err(to_numerical)?,
                Err(LinalgError::NotPositiveDefinite { .. }) => {
                    let ridge: Vec<f64> = (0..self.n)
                        .map(|i| 1e-8 + 1e-8 * hess.get(i, i).abs())
                        .collect();
                    kkt.refresh_diagonal(&ridge).map_err(to_numerical)?;
                    kkt.solve(&(-&grad)).map_err(to_numerical)?
                }
                Err(err) => return Err(to_numerical(err)),
            };
            let decrement_sq = grad.dot(&(-&step)).map_err(to_numerical)?;
            if decrement_sq * 0.5 <= options.newton_tolerance {
                break;
            }
            // Backtracking line search (Armijo on the barrier function,
            // restricted to the domain where all constraints stay negative).
            let mut alpha = 1.0;
            let slope = grad.dot(&step).map_err(to_numerical)?;
            let mut accepted = false;
            for _ in 0..60 {
                let mut candidate = y.clone();
                candidate.axpy(alpha, &step).map_err(to_numerical)?;
                if self.strictly_feasible(&candidate) {
                    let phi_candidate = self.barrier_value(&candidate, t);
                    if phi_candidate <= phi + 1e-4 * alpha * slope {
                        *y = candidate;
                        accepted = true;
                        break;
                    }
                }
                alpha *= 0.5;
            }
            steps += 1;
            if !accepted {
                // The step is too small to make progress; we are at numerical
                // precision for this centering problem.
                break;
            }
        }
        Ok(steps)
    }

    fn strictly_feasible(&self, y: &Vector) -> bool {
        self.constraints.iter().all(|c| c.value(y) < 0.0)
    }

    fn barrier_value(&self, y: &Vector, t: f64) -> f64 {
        let mut phi = t * self.objective.value(y);
        for c in &self.constraints {
            let v = c.value(y);
            if v >= 0.0 {
                return f64::INFINITY;
            }
            phi -= (-v).ln();
        }
        phi
    }

    fn barrier_derivatives(&self, y: &Vector, t: f64) -> Result<(f64, Vector, Matrix), GpError> {
        let n = self.n;
        let mut grad = Vector::zeros(n);
        let mut hess = Matrix::zeros(n, n).map_err(to_numerical)?;
        // Objective contributes t·∇F₀ and t·∇²F₀.
        let f0 = self
            .objective
            .accumulate(y, t, &mut grad, Some((&mut hess, t, 0.0)));
        let mut phi = t * f0;
        for c in &self.constraints {
            let value = c.value(y);
            if value >= 0.0 {
                return Err(GpError::Numerical(
                    "barrier evaluated at an infeasible point".into(),
                ));
            }
            let inv = 1.0 / (-value);
            // −log(−f): gradient ∇f/(−f), Hessian ∇²f/(−f) + ∇f∇fᵀ/f².
            c.accumulate(y, inv, &mut grad, Some((&mut hess, inv, inv * inv)));
            phi -= (-value).ln();
        }
        Ok((phi, grad, hess))
    }
}

fn to_numerical<E: std::fmt::Display>(err: E) -> GpError {
    GpError::Numerical(err.to_string())
}

/// Solves a validated [`GpProblem`]; entry point used by [`GpProblem::solve_with`].
pub(crate) fn solve(problem: &GpProblem, options: &SolverOptions) -> Result<GpSolution, GpError> {
    let n = problem.num_vars();
    let objective = problem
        .objective
        .as_ref()
        .ok_or(GpError::MissingObjective)?;
    if n == 0 {
        // No variables: the objective is a constant.
        return Ok(GpSolution {
            values: Vec::new(),
            objective: objective.eval(&[]),
            newton_iterations: 0,
            warm_started: false,
            dual_warm_started: false,
            barrier_iterations: 0,
            factorizations: 0,
            dual_state: None,
        });
    }
    let num_explicit = problem.constraints.len();

    if !(options.variable_lower > 0.0 && options.variable_upper > options.variable_lower) {
        return Err(GpError::InvalidArgument(
            "solver variable bounds must satisfy 0 < lower < upper".into(),
        ));
    }
    let mut constraints: Vec<LogSumExp> = problem
        .constraints
        .iter()
        .map(|c| LogSumExp::from_posynomial(&c.posy))
        .collect();
    // Implicit box constraints keep every barrier subproblem bounded; see
    // `SolverOptions::variable_lower`.
    let lower_log = options.variable_lower.ln();
    let upper_log = options.variable_upper.ln();
    for j in 0..n {
        // x_j ≤ upper  ⇔  y_j − ln(upper) ≤ 0.
        constraints.push(LogSumExp {
            terms: vec![(vec![(j, 1.0)], -upper_log)],
        });
        // x_j ≥ lower  ⇔  −y_j + ln(lower) ≤ 0.
        constraints.push(LogSumExp {
            terms: vec![(vec![(j, -1.0)], lower_log)],
        });
    }
    let program = ConvexProgram {
        objective: LogSumExp::from_posynomial(objective),
        constraints,
        n,
    };

    let mut total_newton = 0usize;
    let mut barrier_iterations = 0usize;
    let mut factorizations = 0usize;
    // Warm start: a strictly feasible hint becomes the barrier start point
    // and phase I is skipped. Anything invalid degrades to the cold start.
    let mut warm_started = false;
    let mut y = match warm_start_point(&program, options, n) {
        Some(point) => {
            warm_started = true;
            point
        }
        None => Vector::zeros(n),
    };
    // Phase I: find a strictly feasible y (all F_i(y) < 0).
    if !program.constraints.is_empty() && !program.strictly_feasible(&y) {
        let (feasible_y, effort) = phase_one(&program, options)?;
        total_newton += effort.newton;
        barrier_iterations += effort.barrier;
        factorizations += effort.factorizations;
        y = feasible_y;
        if !program.strictly_feasible(&y) {
            return Err(GpError::Infeasible);
        }
    }

    // Phase II: barrier path following. One factorization workspace serves
    // every Newton system of the phase; consecutive Hessians share it.
    let m = program.constraints.len();
    let mut kkt = KktFactorization::new(n).map_err(to_numerical)?;
    let mut t = options.initial_barrier;
    let mut dual_warm_started = false;
    if m == 0 {
        // Purely unconstrained: a single centering with large t is a plain
        // Newton minimization of the objective.
        t = 1.0;
        total_newton += program.center(&mut y, t, options, &mut kkt)?;
        barrier_iterations += 1;
    } else {
        // Dual warm start: an accepted prior dual state places the starting
        // barrier parameter near the previous solve's endpoint, skipping the
        // early centering path from `initial_barrier`.
        if warm_started {
            if let Some(warm_t) = warm_barrier_parameter(&program, &y, m, num_explicit, options) {
                t = warm_t;
                dual_warm_started = true;
            }
        }
        for _ in 0..options.max_outer_iterations {
            total_newton += program.center(&mut y, t, options, &mut kkt)?;
            barrier_iterations += 1;
            if (m as f64) / t < options.tolerance {
                break;
            }
            t *= options.barrier_growth;
        }
    }
    factorizations += kkt.factorizations() + kkt.refreshes();

    // Dual estimates of the explicit constraints at the final center:
    // λ_i = 1 / (t · (−F_i(y))). Strict feasibility makes every slack
    // positive; the clamp only guards the last few ulps.
    let duals: Vec<f64> = program.constraints[..num_explicit]
        .iter()
        .map(|c| 1.0 / (t * (-c.value(&y)).max(f64::MIN_POSITIVE)))
        .collect();

    let values: Vec<f64> = (0..n).map(|j| y.get(j).exp()).collect();
    let objective_value = objective.eval(&values);
    Ok(GpSolution {
        values,
        objective: objective_value,
        newton_iterations: total_newton,
        warm_started,
        dual_warm_started,
        barrier_iterations,
        factorizations,
        dual_state: Some(GpDualState {
            barrier_t: t,
            duals,
        }),
    })
}

/// Validates [`SolverOptions::initial_dual`] against the program at the
/// accepted warm point `y` and derives the phase-II starting barrier
/// parameter from it. Returns `None` when the dual state must be ignored.
///
/// The parameter is `m / η` for the surrogate duality gap
/// `η = Σ λ_i · (−F_i(y))` over the explicit constraints, clamped to
/// `[initial_barrier, barrier_t]` and then snapped *down* onto the cold
/// ladder `initial_barrier · barrier_growth^k`: at the producing solve's own
/// optimum every product is exactly `1/t`, so the estimate recovers (about)
/// the previous final `t`, while a genuinely perturbed neighboring problem
/// widens the slacks and lowers the start accordingly. The snap matters
/// because it makes the warm solve follow the exact `t`-sequence a cold
/// solve would — same rungs, same final `t`, same numerical regime for the
/// last centering — so the dual hint only removes early rungs instead of
/// shifting the whole ladder (an offset ladder overshoots the endpoint and
/// can stall its final centering at floating-point precision).
fn warm_barrier_parameter(
    program: &ConvexProgram,
    y: &Vector,
    m_total: usize,
    num_explicit: usize,
    options: &SolverOptions,
) -> Option<f64> {
    let dual = options.initial_dual.as_ref()?;
    if !(dual.barrier_t.is_finite() && dual.barrier_t >= options.initial_barrier) {
        return None;
    }
    if dual.duals.len() != num_explicit || dual.duals.iter().any(|l| !(l.is_finite() && *l >= 0.0))
    {
        return None;
    }
    let mut surrogate_gap = 0.0;
    for (lambda, c) in dual.duals.iter().zip(&program.constraints[..num_explicit]) {
        let slack = -c.value(y);
        if slack <= 0.0 {
            return None;
        }
        surrogate_gap += lambda * slack;
    }
    let estimate = if surrogate_gap > 0.0 && surrogate_gap.is_finite() {
        (m_total as f64) / surrogate_gap
    } else {
        // All-zero duals (e.g. a problem without explicit constraints):
        // fall back to the previous endpoint.
        dual.barrier_t
    };
    let clamped = estimate.clamp(options.initial_barrier, dual.barrier_t);
    let rung = ((clamped / options.initial_barrier).ln() / options.barrier_growth.ln()).floor();
    Some(options.initial_barrier * options.barrier_growth.powi(rung as i32))
}

/// Validates [`SolverOptions::initial_point`] against the log-space program:
/// right length, strictly positive and finite values, strictly feasible for
/// every constraint (box bounds included). Returns the log-space point, or
/// `None` when the hint must be ignored.
fn warm_start_point(program: &ConvexProgram, options: &SolverOptions, n: usize) -> Option<Vector> {
    let point = options.initial_point.as_ref()?;
    if point.len() != n || point.iter().any(|&x| !(x.is_finite() && x > 0.0)) {
        return None;
    }
    let y: Vector = point.iter().map(|&x| x.ln()).collect();
    program.strictly_feasible(&y).then_some(y)
}

/// Machine-independent effort counters of one solver phase.
#[derive(Debug, Clone, Copy, Default)]
struct Effort {
    /// Newton steps.
    newton: usize,
    /// Barrier centering problems solved.
    barrier: usize,
    /// KKT factorization attempts (full refactorizations plus refreshes).
    factorizations: usize,
}

/// Phase I: minimize `s` over `(y, s)` subject to `F_i(y) ≤ s`, stopping as
/// soon as a strictly feasible `y` is found.
fn phase_one(
    program: &ConvexProgram,
    options: &SolverOptions,
) -> Result<(Vector, Effort), GpError> {
    let n = program.n;
    // Extended problem over (y, s): objective = s (affine), constraints
    // F_i(y) − s ≤ 0. We reuse ConvexProgram by expressing everything as
    // LogSumExp over n+1 variables, where the objective is exp(s') with
    // s' = s (a single affine term) — but s can be negative, which is exactly
    // what log-space variables allow (s here is already a log-space value).
    let mut ext_constraints = Vec::with_capacity(program.constraints.len());
    for c in &program.constraints {
        let mut terms = c.terms.clone();
        for (a, _) in &mut terms {
            a.push((n, -1.0));
        }
        ext_constraints.push(LogSumExp { terms });
    }
    let ext = ConvexProgram {
        objective: LogSumExp {
            terms: vec![(vec![(n, 1.0)], 0.0)],
        },
        constraints: ext_constraints,
        n: n + 1,
    };

    // Start at y = 0, s = max F_i(0) + 1 (strictly feasible for the extended
    // problem by construction).
    let mut y_ext = Vector::zeros(n + 1);
    let worst = program
        .constraints
        .iter()
        .map(|c| c.value(&Vector::zeros(n)))
        .fold(f64::NEG_INFINITY, f64::max);
    y_ext.set(n, worst + 1.0);

    let mut effort = Effort::default();
    let mut kkt = KktFactorization::new(n + 1).map_err(to_numerical)?;
    let mut t = options.initial_barrier;
    for _ in 0..options.max_outer_iterations {
        effort.newton += ext.center(&mut y_ext, t, options, &mut kkt)?;
        effort.barrier += 1;
        let y_candidate: Vector = (0..n).map(|j| y_ext.get(j)).collect();
        if program
            .constraints
            .iter()
            .all(|c| c.value(&y_candidate) < -1e-9)
        {
            effort.factorizations = kkt.factorizations() + kkt.refreshes();
            return Ok((y_candidate, effort));
        }
        if (ext.constraints.len() as f64) / t < options.tolerance {
            break;
        }
        t *= options.barrier_growth;
    }
    effort.factorizations = kkt.factorizations() + kkt.refreshes();
    // Converged without reaching negative slack: infeasible.
    let y_candidate: Vector = (0..n).map(|j| y_ext.get(j)).collect();
    if program.strictly_feasible(&y_candidate) {
        Ok((y_candidate, effort))
    } else {
        Err(GpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpProblem, Monomial, Posynomial};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn minimize_x_with_lower_bound() {
        // minimize x s.t. 1/x ≤ 1  →  x = 1.
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(x, 1.0)]));
        gp.add_le_constraint("x ≥ 1", Posynomial::monomial(1.0, &[(x, -1.0)]))
            .unwrap();
        let sol = gp.solve().unwrap();
        assert!(close(sol.value(x), 1.0, 1e-4), "x = {}", sol.value(x));
        assert!(close(sol.objective(), 1.0, 1e-4));
    }

    #[test]
    fn maximize_product_under_upper_bounds() {
        // minimize 1/(xy) s.t. x ≤ 2, y ≤ 3 → objective 1/6 at (2, 3).
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        let y = gp.add_var("y").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(x, -1.0), (y, -1.0)]));
        gp.add_le_constraint("x ≤ 2", Posynomial::monomial(0.5, &[(x, 1.0)]))
            .unwrap();
        gp.add_le_constraint("y ≤ 3", Posynomial::monomial(1.0 / 3.0, &[(y, 1.0)]))
            .unwrap();
        let sol = gp.solve().unwrap();
        assert!(close(sol.value(x), 2.0, 1e-3));
        assert!(close(sol.value(y), 3.0, 1e-3));
        assert!(close(sol.objective(), 1.0 / 6.0, 1e-3));
    }

    #[test]
    fn box_design_problem() {
        // Classic GP: maximize volume hwd subject to wall area and floor area
        // limits: 2(hw + hd) ≤ 100, wd ≤ 10. Minimize h⁻¹w⁻¹d⁻¹.
        let mut gp = GpProblem::new();
        let h = gp.add_var("h").unwrap();
        let w = gp.add_var("w").unwrap();
        let d = gp.add_var("d").unwrap();
        gp.set_objective(Posynomial::monomial(
            1.0,
            &[(h, -1.0), (w, -1.0), (d, -1.0)],
        ));
        let wall = Posynomial::monomial(2.0 / 100.0, &[(h, 1.0), (w, 1.0)])
            .with_term(Monomial::new(2.0 / 100.0, &[(h, 1.0), (d, 1.0)]));
        gp.add_le_constraint("wall", wall).unwrap();
        gp.add_le_constraint(
            "floor",
            Posynomial::monomial(1.0 / 10.0, &[(w, 1.0), (d, 1.0)]),
        )
        .unwrap();
        let sol = gp.solve().unwrap();
        // Analytic optimum: w = d = √10, h = 100/(4√10), volume = 250/√10.
        let w_star = 10.0_f64.sqrt();
        let h_star = 100.0 / (4.0 * w_star);
        assert!(close(sol.value(w), w_star, 1e-2), "w = {}", sol.value(w));
        assert!(close(sol.value(d), w_star, 1e-2), "d = {}", sol.value(d));
        assert!(close(sol.value(h), h_star, 1e-2), "h = {}", sol.value(h));
        let volume = sol.value(h) * sol.value(w) * sol.value(d);
        assert!(close(volume, 250.0 / w_star, 1e-2));
    }

    #[test]
    fn infeasible_problem_is_reported() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(x, 1.0)]));
        gp.add_le_constraint("x ≤ 1", Posynomial::monomial(1.0, &[(x, 1.0)]))
            .unwrap();
        gp.add_le_constraint("x ≥ 2", Posynomial::monomial(2.0, &[(x, -1.0)]))
            .unwrap();
        assert_eq!(gp.solve().unwrap_err(), GpError::Infeasible);
    }

    #[test]
    fn posynomial_constraint_with_shared_budget() {
        // minimize II s.t. 3/(N1·II) ≤ 1, 5/(N2·II) ≤ 1, 0.2·N1 + 0.3·N2 ≤ 1.
        // This is the shape of the paper's GP (two kernels, one resource).
        // At the optimum the budget is tight and both kernels are critical:
        // N1 = 3/II, N2 = 5/II → 0.2·3/II + 0.3·5/II = 1 → II = 2.1.
        let mut gp = GpProblem::new();
        let ii = gp.add_var("II").unwrap();
        let n1 = gp.add_var("N1").unwrap();
        let n2 = gp.add_var("N2").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(ii, 1.0)]));
        gp.add_le_constraint("k1", Posynomial::monomial(3.0, &[(n1, -1.0), (ii, -1.0)]))
            .unwrap();
        gp.add_le_constraint("k2", Posynomial::monomial(5.0, &[(n2, -1.0), (ii, -1.0)]))
            .unwrap();
        let budget =
            Posynomial::monomial(0.2, &[(n1, 1.0)]).with_term(Monomial::new(0.3, &[(n2, 1.0)]));
        gp.add_le_constraint("budget", budget).unwrap();
        let sol = gp.solve().unwrap();
        assert!(
            close(sol.objective(), 2.1, 1e-3),
            "II = {}",
            sol.objective()
        );
        assert!(close(sol.value(n1), 3.0 / 2.1, 1e-2));
        assert!(close(sol.value(n2), 5.0 / 2.1, 1e-2));
    }

    #[test]
    fn unconstrained_problem_with_interior_minimum() {
        // minimize x + 1/x → minimum 2 at x = 1.
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        let obj =
            Posynomial::monomial(1.0, &[(x, 1.0)]).with_term(Monomial::new(1.0, &[(x, -1.0)]));
        gp.set_objective(obj);
        let sol = gp.solve().unwrap();
        assert!(close(sol.value(x), 1.0, 1e-4));
        assert!(close(sol.objective(), 2.0, 1e-6));
    }

    #[test]
    fn constant_problem_with_no_variables() {
        let mut gp = GpProblem::new();
        gp.set_objective(Posynomial::constant(4.2));
        let sol = gp.solve().unwrap();
        assert_eq!(sol.objective(), 4.2);
        assert!(sol.values().is_empty());
    }

    /// The shared-budget toy problem (see
    /// `posynomial_constraint_with_shared_budget`): optimum II = 2.1.
    fn budget_problem() -> (GpProblem, crate::GpVarId) {
        let mut gp = GpProblem::new();
        let ii = gp.add_var("II").unwrap();
        let n1 = gp.add_var("N1").unwrap();
        let n2 = gp.add_var("N2").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(ii, 1.0)]));
        gp.add_le_constraint("k1", Posynomial::monomial(3.0, &[(n1, -1.0), (ii, -1.0)]))
            .unwrap();
        gp.add_le_constraint("k2", Posynomial::monomial(5.0, &[(n2, -1.0), (ii, -1.0)]))
            .unwrap();
        let budget =
            Posynomial::monomial(0.2, &[(n1, 1.0)]).with_term(Monomial::new(0.3, &[(n2, 1.0)]));
        gp.add_le_constraint("budget", budget).unwrap();
        (gp, ii)
    }

    #[test]
    fn warm_start_skips_phase_one_and_keeps_the_optimum() {
        let (gp, ii) = budget_problem();
        let cold = gp.solve().unwrap();
        assert!(!cold.warm_started());
        // A strictly interior point a few percent off the optimum: II = 2.3,
        // N_k = WCET_k / 2.2 (all constraint slacks strictly positive).
        let warm = gp
            .solve_with(&SolverOptions::warm_started(vec![
                2.3,
                3.0 / 2.2,
                5.0 / 2.2,
            ]))
            .unwrap();
        assert!(warm.warm_started());
        assert!(
            warm.newton_iterations() < cold.newton_iterations(),
            "warm {} vs cold {} Newton steps",
            warm.newton_iterations(),
            cold.newton_iterations()
        );
        assert!(close(warm.value(ii), cold.value(ii), 1e-6));
    }

    #[test]
    fn invalid_or_infeasible_warm_starts_are_ignored() {
        let (gp, ii) = budget_problem();
        let cold = gp.solve().unwrap();
        for bad in [
            vec![],                          // wrong length
            vec![2.3, 3.0 / 2.2],            // wrong length
            vec![-1.0, 1.0, 1.0],            // non-positive
            vec![f64::NAN, 1.0, 1.0],        // non-finite
            vec![0.5, 10.0, 10.0],           // infeasible (budget blown)
            vec![2.1, 3.0 / 2.1, 5.0 / 2.1], // on the boundary, not strict
        ] {
            let sol = gp.solve_with(&SolverOptions::warm_started(bad)).unwrap();
            assert!(!sol.warm_started());
            assert!(close(sol.value(ii), cold.value(ii), 1e-6));
        }
    }

    #[test]
    fn dual_warm_start_skips_the_early_barrier_path() {
        let (gp, ii) = budget_problem();
        let cold = gp.solve().unwrap();
        assert!(!cold.dual_warm_started());
        assert!(cold.barrier_iterations() > 1);
        assert!(cold.factorizations() >= cold.newton_iterations());
        let dual = cold
            .dual_state()
            .expect("variable problems carry duals")
            .clone();
        assert_eq!(dual.duals.len(), 3);
        assert!(dual.duals.iter().all(|l| l.is_finite() && *l >= 0.0));
        // Neighboring warm point (slightly off the optimum) plus the cold
        // solve's dual state: phase II starts near the previous final t.
        let warm_point = vec![2.3, 3.0 / 2.2, 5.0 / 2.2];
        let warm = gp
            .solve_with(&SolverOptions::warm_started_with_duals(
                warm_point.clone(),
                dual,
            ))
            .unwrap();
        assert!(warm.warm_started());
        assert!(warm.dual_warm_started());
        assert!(
            warm.barrier_iterations() < cold.barrier_iterations(),
            "warm {} vs cold {} barrier iterations",
            warm.barrier_iterations(),
            cold.barrier_iterations()
        );
        assert!(
            warm.factorizations() < cold.factorizations(),
            "warm {} vs cold {} factorizations",
            warm.factorizations(),
            cold.factorizations()
        );
        assert!(close(warm.value(ii), cold.value(ii), 1e-6));
        // The dual start also beats the primal-only warm start, which still
        // walks the whole barrier path from t = initial_barrier.
        let primal_only = gp
            .solve_with(&SolverOptions::warm_started(warm_point))
            .unwrap();
        assert!(!primal_only.dual_warm_started());
        assert!(warm.barrier_iterations() < primal_only.barrier_iterations());
    }

    #[test]
    fn invalid_dual_states_are_ignored() {
        let (gp, ii) = budget_problem();
        let cold = gp.solve().unwrap();
        let warm_point = vec![2.3, 3.0 / 2.2, 5.0 / 2.2];
        let good_t = cold.dual_state().unwrap().barrier_t;
        for bad in [
            GpDualState {
                barrier_t: good_t,
                duals: vec![0.1, 0.1], // wrong length
            },
            GpDualState {
                barrier_t: good_t,
                duals: vec![0.1, -0.1, 0.1], // negative dual
            },
            GpDualState {
                barrier_t: good_t,
                duals: vec![0.1, f64::NAN, 0.1], // non-finite dual
            },
            GpDualState {
                barrier_t: f64::INFINITY, // out-of-range t
                duals: vec![0.1, 0.1, 0.1],
            },
            GpDualState {
                barrier_t: 0.0, // below initial_barrier
                duals: vec![0.1, 0.1, 0.1],
            },
        ] {
            let sol = gp
                .solve_with(&SolverOptions::warm_started_with_duals(
                    warm_point.clone(),
                    bad,
                ))
                .unwrap();
            assert!(sol.warm_started());
            assert!(!sol.dual_warm_started());
            assert!(close(sol.value(ii), cold.value(ii), 1e-6));
        }
        // A dual state without an accepted primal hint is ignored too: the
        // duals describe the central path near that point only.
        let sol = gp
            .solve_with(&SolverOptions {
                initial_dual: Some(cold.dual_state().unwrap().clone()),
                ..SolverOptions::default()
            })
            .unwrap();
        assert!(!sol.warm_started());
        assert!(!sol.dual_warm_started());
        assert!(close(sol.value(ii), cold.value(ii), 1e-6));
    }

    #[test]
    fn solver_options_are_respected() {
        let mut gp = GpProblem::new();
        let x = gp.add_var("x").unwrap();
        gp.set_objective(Posynomial::monomial(1.0, &[(x, 1.0)]));
        gp.add_le_constraint("lb", Posynomial::monomial(1.0, &[(x, -1.0)]))
            .unwrap();
        let loose = SolverOptions {
            tolerance: 1e-2,
            ..SolverOptions::default()
        };
        let tight = SolverOptions {
            tolerance: 1e-10,
            ..SolverOptions::default()
        };
        let sol_loose = gp.solve_with(&loose).unwrap();
        let sol_tight = gp.solve_with(&tight).unwrap();
        assert!(sol_loose.newton_iterations() <= sol_tight.newton_iterations());
        assert!((sol_tight.value(x) - 1.0).abs() <= (sol_loose.value(x) - 1.0).abs() + 1e-9);
    }
}
