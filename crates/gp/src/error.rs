//! Error type for GP modeling and solving.

use std::error::Error;
use std::fmt;

/// Error returned by GP model construction or the interior-point solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// A coefficient was not strictly positive (posynomials require
    /// positive coefficients) or another argument was invalid.
    InvalidArgument(String),
    /// A variable handle did not belong to the problem.
    UnknownVariable(usize),
    /// No objective was set before solving.
    MissingObjective,
    /// The phase-I search could not find a strictly feasible point.
    Infeasible,
    /// The Newton iteration failed to converge within the iteration budget.
    DidNotConverge {
        /// Outer barrier iterations performed.
        outer_iterations: usize,
    },
    /// A numerical failure (singular Newton system) occurred.
    Numerical(String),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            GpError::UnknownVariable(idx) => write!(f, "unknown variable #{idx}"),
            GpError::MissingObjective => write!(f, "no objective was set"),
            GpError::Infeasible => write!(f, "problem has no strictly feasible point"),
            GpError::DidNotConverge { outer_iterations } => {
                write!(
                    f,
                    "solver did not converge after {outer_iterations} barrier iterations"
                )
            }
            GpError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl Error for GpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(GpError::UnknownVariable(3).to_string().contains('3'));
        assert!(GpError::Infeasible.to_string().contains("feasible"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
