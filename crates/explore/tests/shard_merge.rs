//! Property tests for the sharding invariant the dispatcher is built on:
//! a sweep's merged output is a pure function of `(grid, chunk_size,
//! warm_start)` — never of how units are partitioned across workers or in
//! which order they complete.
//!
//! These tests exercise the invariant in-process through the public
//! work-unit API ([`plan_units`] / [`compute_unit`] / [`assemble_series`]),
//! which is exactly the pipeline a remote worker runs; the process-boundary
//! version (spawned and TCP workers, plus crash reassignment) is covered by
//! `crates/dispatch/tests/`.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::gpa::GpaOptions;
use proptest::{prop_assert_eq, proptest, ProptestConfig, Strategy};

use mfa_explore::{
    assemble_series, compute_unit, export, plan_units, run_sweep, zero_timing, CaseSpec,
    ExecutorOptions, SolverSpec, SweepGrid, SweepPoint,
};

/// A random (but always feasible) Alex-16 constraint grid with one or two
/// GP+A backends.
fn random_grid() -> impl Strategy<Value = SweepGrid> {
    (0.55f64..0.70, 0.10f64..0.20, 2usize..6, 0usize..2).prop_map(
        |(lo, span, points, second_backend)| {
            let hi = (lo + span).min(0.9);
            let constraints: Vec<f64> = (0..points)
                .map(|i| lo + (hi - lo) * i as f64 / (points - 1).max(1) as f64)
                .collect();
            let mut builder = SweepGrid::builder()
                .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
                .fpga_counts([2])
                .constraints(constraints)
                .backend(SolverSpec::gpa(GpaOptions::fast()));
            if second_backend == 1 {
                builder = builder.backend(SolverSpec::gpa_labeled(
                    "GP+A/T10",
                    GpaOptions {
                        greedy: mfa_alloc::greedy::GreedyOptions::with_t_delta(0.10, 0.01),
                        ..GpaOptions::fast()
                    },
                ));
            }
            builder.build().expect("axes are non-empty and in range")
        },
    )
}

/// Deterministic pseudo-random permutation of `0..len` (SplitMix64-driven
/// Fisher-Yates) — the adversarial completion order.
fn permutation(len: usize, seed: usize) -> Vec<usize> {
    let mut state = seed as u64 ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (next() as usize) % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Exported bytes of a series list, timing normalized.
fn bytes(mut series: Vec<mfa_explore::SweepSeries>) -> (String, String) {
    zero_timing(&mut series);
    (
        export::series_to_json(&series),
        export::series_to_csv(&series),
    )
}

/// Simulates a sharded run: partition units round-robin over `workers`
/// queues, complete them in the `seed`-derived adversarial order, slot
/// results by unit index, merge.
fn sharded_simulation(
    grid: &SweepGrid,
    chunk_size: usize,
    workers: usize,
    warm_start: bool,
    seed: usize,
) -> Vec<mfa_explore::SweepSeries> {
    let units = plan_units(grid, chunk_size).unwrap();
    // Partition: worker w owns units w, w+workers, w+2·workers, …
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (idx, _) in units.iter().enumerate() {
        queues[idx % workers].push(idx);
    }
    // Adversarial completion: a global permutation decides which worker
    // "finishes next"; each worker completes its own queue in order (a
    // worker is sequential), but workers interleave arbitrarily.
    let mut results: Vec<Option<Vec<Option<SweepPoint>>>> = vec![None; units.len()];
    let mut cursors = vec![0usize; workers];
    for &step in &permutation(units.len(), seed) {
        // The permutation entry picks a worker (mod workers) that still has
        // units; scan forward from it so every unit completes exactly once.
        let mut w = step % workers;
        while cursors[w] >= queues[w].len() {
            w = (w + 1) % workers;
        }
        let uid = queues[w][cursors[w]];
        cursors[w] += 1;
        results[uid] = Some(compute_unit(grid, &units[uid], warm_start).unwrap());
    }
    let results: Vec<_> = results.into_iter().map(Option::unwrap).collect();
    assemble_series(grid, &units, results)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn sharded_simulation_is_byte_identical_to_serial(
        grid in random_grid(),
        chunk_size in 1usize..5,
        workers in 1usize..5,
        seed in 0usize..1_000_000,
    ) {
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                num_threads: Some(1),
                chunk_size,
                warm_start: true,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        let sharded = sharded_simulation(&grid, chunk_size, workers, true, seed);
        prop_assert_eq!(bytes(sharded), bytes(serial));
    }

    #[test]
    fn cold_sharded_runs_are_partition_independent(
        grid in random_grid(),
        chunk_size in 1usize..5,
        workers in 1usize..5,
        seed in 0usize..1_000_000,
    ) {
        // With warm starts off every point solves cold, so the output is
        // additionally independent of the chunking itself: any partition
        // must reproduce ExecutorOptions::serial() (chunk 8) minus warm
        // starts, byte for byte.
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                warm_start: false,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let sharded = sharded_simulation(&grid, chunk_size, workers, false, seed);
        prop_assert_eq!(bytes(sharded), bytes(serial));
    }
}

/// Non-random spot check: the warm-started figure grids reproduce
/// [`ExecutorOptions::serial`]'s bytes under an adversarial order too (the
/// golden tests pin the same fact against committed snapshots).
#[test]
fn figure_grids_survive_reversed_completion() {
    let figure = &mfa_explore::figures::paper_figures(true, false).unwrap()[0];
    let serial = run_sweep(&figure.grid, &ExecutorOptions::serial()).unwrap();
    let units = plan_units(&figure.grid, 8).unwrap();
    let mut results: Vec<Option<Vec<Option<SweepPoint>>>> = vec![None; units.len()];
    for (idx, unit) in units.iter().enumerate().rev() {
        results[idx] = Some(compute_unit(&figure.grid, unit, true).unwrap());
    }
    let merged = assemble_series(
        &figure.grid,
        &units,
        results.into_iter().map(Option::unwrap).collect(),
    );
    assert_eq!(bytes(merged), bytes(serial));
}
