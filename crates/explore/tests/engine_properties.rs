//! Property tests of the parallel exploration engine: the parallel executor
//! must return the same `SweepPoint` series as the serial path (ordering
//! included) for arbitrary problems, and degenerate grids must surface as
//! errors, not panics.

use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_explore::{
    constraint_grid, run_sweep, CaseSpec, ExecutorOptions, ExploreError, PlatformSpec, SolverSpec,
    SweepGrid, SweepSeries,
};
use mfa_platform::{
    DeviceGroup, FpgaDevice, HeterogeneousPlatform, MultiFpgaPlatform, ResourceBudget, ResourceVec,
};
use proptest::prelude::*;

/// Strips the wall-clock field, the only legitimate run-to-run difference.
fn zero_timing(mut series: Vec<SweepSeries>) -> Vec<SweepSeries> {
    for s in &mut series {
        for p in &mut s.points {
            p.solve_seconds = 0.0;
        }
    }
    series
}

fn random_case(wcets: &[f64], dsp: f64, bram: f64) -> CaseSpec {
    let kernels: Vec<Kernel> = wcets
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            Kernel::new(format!("k{i}"), w, ResourceVec::bram_dsp(bram, dsp), 0.01).unwrap()
        })
        .collect();
    let base = AllocationProblem::builder()
        .kernels(kernels)
        .platform(MultiFpgaPlatform::aws_f1_4xlarge())
        .budget(ResourceBudget::uniform(0.9))
        .weights(GoalWeights::ii_only())
        .build()
        .unwrap();
    CaseSpec::new("random", base)
}

proptest! {
    /// Parallel and serial execution agree exactly — same series, same
    /// points, same ordering — on random pipelines, FPGA counts and
    /// constraint grids, with warm starts enabled.
    #[test]
    fn parallel_equals_serial_on_random_problems(
        wcets in proptest::collection::vec(1.0..25.0f64, 2..5),
        dsp in 0.05..0.3f64,
        bram in 0.01..0.1f64,
        num_fpgas in 1usize..4,
        chunk_size in 1usize..4,
        lo in 0.35..0.55f64,
    ) {
        let case = random_case(&wcets, dsp, bram);
        let grid = SweepGrid::builder()
            .case(case)
            .fpga_counts([num_fpgas])
            .constraints(constraint_grid(lo, 0.9, 5).unwrap())
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let serial = run_sweep(&grid, &ExecutorOptions {
            chunk_size,
            ..ExecutorOptions::serial()
        }).unwrap();
        let parallel = run_sweep(&grid, &ExecutorOptions {
            num_threads: Some(3),
            chunk_size,
            warm_start: true,
            ..ExecutorOptions::default()
        }).unwrap();
        prop_assert_eq!(zero_timing(serial), zero_timing(parallel));
    }

    /// Cold and warm-started sweeps produce byte-identical series (modulo
    /// wall-clock timing) on random grids whose budget axis mixes uniform
    /// constraints with random per-resource budget points, and whose
    /// platform axis includes a heterogeneous fleet — the determinism
    /// contract of the new axes. (The executor's chunk decomposition and the
    /// budget-distance warm-start metric are both scheduling-independent, so
    /// serial ≡ parallel must keep holding with warm starts on.)
    #[test]
    fn parallel_equals_serial_with_budget_and_platform_axes(
        wcets in proptest::collection::vec(2.0..20.0f64, 2..4),
        dsp in 0.05..0.2f64,
        bram_budget in 0.5..1.0f64,
        dsp_budget in 0.5..1.0f64,
        bandwidth in 0.5..1.0f64,
        chunk_size in 1usize..4,
    ) {
        let case = random_case(&wcets, dsp, 0.02);
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let grid = SweepGrid::builder()
            .case(case)
            .fpga_counts([2])
            .platform(PlatformSpec::platform(fleet))
            .constraints([0.6, 0.9])
            .budget(ResourceBudget::new(
                ResourceVec::new(0.95, 0.95, bram_budget, dsp_budget),
                bandwidth,
            ))
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let serial = run_sweep(&grid, &ExecutorOptions {
            chunk_size,
            ..ExecutorOptions::serial()
        }).unwrap();
        let parallel = run_sweep(&grid, &ExecutorOptions {
            num_threads: Some(3),
            chunk_size,
            warm_start: true,
            ..ExecutorOptions::default()
        }).unwrap();
        prop_assert_eq!(zero_timing(serial.clone()), zero_timing(parallel));
        // Warm-started and cold sweeps agree on every achieved II.
        let cold = run_sweep(&grid, &ExecutorOptions {
            warm_start: false,
            ..ExecutorOptions::serial()
        }).unwrap();
        for (w, c) in serial.iter().zip(&cold) {
            prop_assert_eq!(w.points.len(), c.points.len());
            for (wp, cp) in w.points.iter().zip(&c.points) {
                prop_assert!(
                    (wp.initiation_interval_ms - cp.initiation_interval_ms).abs()
                        < 1e-9 * cp.initiation_interval_ms.max(1.0),
                    "warm {} vs cold {}", wp.initiation_interval_ms, cp.initiation_interval_ms
                );
            }
        }
    }

    /// Warm-started sweeps reach the same initiation intervals as cold ones.
    #[test]
    fn warm_starts_do_not_change_results(
        wcets in proptest::collection::vec(1.0..25.0f64, 2..5),
        dsp in 0.05..0.25f64,
    ) {
        let case = random_case(&wcets, dsp, 0.02);
        let grid = SweepGrid::builder()
            .case(case)
            .fpga_counts([2])
            .constraints(constraint_grid(0.5, 0.9, 4).unwrap())
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let warm = run_sweep(&grid, &ExecutorOptions {
            chunk_size: 4,
            ..ExecutorOptions::serial()
        }).unwrap();
        let cold = run_sweep(&grid, &ExecutorOptions {
            warm_start: false,
            ..ExecutorOptions::serial()
        }).unwrap();
        prop_assert_eq!(warm[0].points.len(), cold[0].points.len());
        for (w, c) in warm[0].points.iter().zip(&cold[0].points) {
            prop_assert!(
                (w.initiation_interval_ms - c.initiation_interval_ms).abs()
                    < 1e-9 * c.initiation_interval_ms.max(1.0),
                "warm {} vs cold {}", w.initiation_interval_ms, c.initiation_interval_ms
            );
        }
    }
}

#[test]
fn degenerate_grids_error_through_the_new_api() {
    // `constraint_grid` rejects bad shapes instead of panicking (the legacy
    // core helper asserts).
    assert!(matches!(
        constraint_grid(0.5, 0.5, 1),
        Err(ExploreError::InvalidGrid(_))
    ));
    assert!(matches!(
        constraint_grid(0.8, 0.4, 4),
        Err(ExploreError::InvalidGrid(_))
    ));
    assert!(matches!(
        constraint_grid(0.5, 0.9, 0),
        Err(ExploreError::InvalidGrid(_))
    ));
    assert!(matches!(
        constraint_grid(f64::NAN, 0.9, 3),
        Err(ExploreError::InvalidGrid(_))
    ));

    // And so does the grid builder, end to end.
    let empty = SweepGrid::builder().build();
    assert!(matches!(empty, Err(ExploreError::InvalidGrid(_))));
    let bad_constraint = SweepGrid::builder()
        .case(random_case(&[4.0, 8.0], 0.1, 0.02))
        .fpga_counts([2])
        .constraints([2.0])
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .build();
    assert!(matches!(bad_constraint, Err(ExploreError::InvalidGrid(_))));
}
