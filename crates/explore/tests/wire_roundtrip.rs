//! Serde-style round-trip property tests for every wire type.
//!
//! The wire codec is the transport contract of the multi-process
//! dispatcher: `decode(encode(x)) == x` must hold *exactly* — floats
//! bit-for-bit — for every value that can legally appear on a grid, work
//! unit, or result frame, and NaN/infinity must be rejected at the encode
//! boundary rather than silently degraded.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::discretize::DiscretizeOptions;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gp_step::RelaxationBackend;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_alloc::solver::{SkipPolicy, WarmStartReport};
use mfa_minlp::SolverOptions;
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec};
use proptest::collection::vec;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

use mfa_explore::wire::{
    decode_grid, decode_points, decode_unit, encode_grid, encode_points, encode_unit, point_to_json,
};
use mfa_explore::{CaseSpec, SolverSpec, SweepGrid, SweepPoint, WorkUnit};

// ---------------------------------------------------------------------------
// Strategies. The vendored proptest stub offers ranges, tuples, prop_map and
// collection::vec; richer shapes are composed from those.

/// A fraction strictly inside (0, 1] with a long binary expansion.
fn fraction() -> impl Strategy<Value = f64> {
    (0.0f64..1.0).prop_map(|v| (v + 1e-6).min(1.0))
}

fn resource_fractions() -> impl Strategy<Value = ResourceVec> {
    (fraction(), fraction(), fraction(), fraction()).prop_map(|(lut, ff, bram, dsp)| ResourceVec {
        lut,
        ff,
        bram,
        dsp,
    })
}

fn budget() -> impl Strategy<Value = ResourceBudget> {
    (resource_fractions(), fraction())
        .prop_map(|(resources, bandwidth)| ResourceBudget::new(resources, bandwidth))
}

fn device() -> impl Strategy<Value = FpgaDevice> {
    (0usize..3, fraction(), fraction()).prop_map(|(preset, scale, bandwidth)| match preset {
        0 => FpgaDevice::vu9p(),
        1 => FpgaDevice::ku115(),
        _ => FpgaDevice::new(
            format!("custom-{scale:.3}"),
            ResourceVec {
                lut: 1.0e6 * scale,
                ff: 2.0e6 * scale,
                bram: 2.0e3 * scale,
                dsp: 6.0e3 * scale,
            },
            100.0 * bandwidth,
        ),
    })
}

fn platform() -> impl Strategy<Value = HeterogeneousPlatform> {
    vec((device(), 1usize..4, 0.0f64..3.0, 0.0f64..1.5), 1usize..3).prop_map(|groups| {
        HeterogeneousPlatform::new(
            format!("fleet-{}", groups.len()),
            groups
                .into_iter()
                .map(|(device, count, slow, budget)| {
                    // Mix neutral and scaled groups so both the absent-field
                    // and present-field wire paths are exercised.
                    let mut group = DeviceGroup::new(device, count);
                    if slow >= 1.0 {
                        group = group.with_wcet_scale(1.0 + slow);
                    }
                    if budget >= 0.5 {
                        group = group.with_budget_scale(0.25 + budget);
                    }
                    group
                })
                .collect(),
        )
    })
}

fn case() -> impl Strategy<Value = CaseSpec> {
    // Paper cases carry real kernel pipelines (names, WCETs, per-CU
    // fractions), exercising the full problem encoding.
    (0usize..3, fraction()).prop_map(|(which, constraint)| {
        let paper = [
            PaperCase::Alex16OnTwoFpgas,
            PaperCase::Alex32OnFourFpgas,
            PaperCase::VggOnEightFpgas,
        ][which];
        let base = CaseSpec::from_paper(paper);
        // Vary the base budget so cases are not all identical.
        CaseSpec::new(
            format!("{}@{constraint:.4}", base.label()),
            base.base().with_resource_constraint(constraint.max(0.5)),
        )
    })
}

fn gpa_options() -> impl Strategy<Value = GpaOptions> {
    (0usize..2, 0usize..2, fraction(), 1usize..50_000).prop_map(|(relax, disc, t, max_nodes)| {
        GpaOptions {
            relaxation_backend: [
                RelaxationBackend::GeometricProgram,
                RelaxationBackend::Bisection,
            ][relax],
            discretize: DiscretizeOptions {
                backend: [
                    RelaxationBackend::GeometricProgram,
                    RelaxationBackend::Bisection,
                ][disc],
                integer_tolerance: 1e-9 + t * 1e-3,
                max_nodes,
            },
            greedy: GreedyOptions::with_t_delta(t * 0.3, 0.005 + t * 0.02),
        }
    })
}

fn exact_options() -> impl Strategy<Value = ExactOptions> {
    (0usize..2, 1usize..100_000, 0usize..2, fraction()).prop_map(
        |(mode, max_nodes, unlimited, seconds)| ExactOptions {
            mode: [ExactMode::IiOnly, ExactMode::IiAndSpreading][mode],
            solver: SolverOptions {
                max_nodes,
                time_limit_seconds: if unlimited == 0 {
                    None
                } else {
                    Some(seconds * 100.0)
                },
                ..SolverOptions::default()
            },
            symmetry_breaking: max_nodes % 2 == 0,
        },
    )
}

fn backend() -> impl Strategy<Value = SolverSpec> {
    (0usize..2, gpa_options(), exact_options()).prop_map(|(kind, gpa, exact)| match kind {
        0 => SolverSpec::gpa_labeled(format!("GP+A/{}", gpa.greedy.max_relaxation), gpa),
        _ => SolverSpec::exact(exact),
    })
}

fn grid() -> impl Strategy<Value = SweepGrid> {
    (
        vec(case(), 1usize..3),
        vec(1usize..9, 1usize..3),
        vec(platform(), 0usize..2),
        vec(fraction(), 1usize..4),
        vec(budget(), 0usize..3),
        // Backends plus the request policy riders: strict/lenient skips and
        // an optional per-point deadline budget.
        (vec(backend(), 1usize..3), 0usize..2, 0usize..3),
    )
        .prop_map(
            |(cases, counts, platforms, constraints, budgets, (backends, skip, deadline))| {
                let policy = (skip, deadline);
                let mut builder = SweepGrid::builder()
                    .cases(cases)
                    .fpga_counts(counts)
                    .platforms(
                        platforms
                            .into_iter()
                            .map(mfa_explore::PlatformSpec::platform),
                    )
                    .constraints(constraints)
                    .budgets(budgets)
                    .backends(backends)
                    .skip_policy(if policy.0 == 0 {
                        SkipPolicy::Lenient
                    } else {
                        SkipPolicy::Strict
                    });
                if policy.1 > 0 {
                    builder = builder.point_deadline_seconds(policy.1 as f64 * 1.5);
                }
                builder
                    .build()
                    .expect("generated axes are non-empty and in range")
            },
        )
}

/// Any finite f64, drawn from the full bit space (subnormals, huge
/// exponents, negative zero, …).
fn any_finite_f64() -> impl Strategy<Value = f64> {
    (0usize..usize::MAX).prop_map(|bits| {
        let v = f64::from_bits(bits as u64);
        if v.is_finite() {
            v
        } else {
            -0.0
        }
    })
}

fn warm_start_report() -> impl Strategy<Value = WarmStartReport> {
    (0usize..8).prop_map(|bits| WarmStartReport {
        ii_hint_used: bits & 1 != 0,
        dual_hint_used: bits & 2 != 0,
        incumbent_used: bits & 4 != 0,
    })
}

fn point() -> impl Strategy<Value = SweepPoint> {
    (
        fraction(),
        budget(),
        any_finite_f64(),
        any_finite_f64(),
        (any_finite_f64(), any_finite_f64()),
        // The additive diagnostics: gap, nodes, effort counters, dropped
        // CUs, provenance.
        (
            any_finite_f64(),
            0usize..1_000_000,
            (0usize..1_000_000, 0usize..1_000_000, 0usize..1_000_000),
            (0usize..10_000, 0usize..10_000, 0.0f64..50.0),
            warm_start_report(),
        ),
    )
        .prop_map(
            |(constraint, budget, ii, util, (spreading, seconds), diag)| SweepPoint {
                resource_constraint: constraint,
                budget,
                initiation_interval_ms: ii,
                average_utilization: util,
                spreading,
                solve_seconds: seconds,
                relaxation_gap: diag.0,
                bb_nodes: diag.1,
                barrier_iterations: diag.2 .0,
                factorizations: diag.2 .1,
                simplex_pivots: diag.2 .2,
                dropped_cus: diag.3 .0 as u32,
                moved_cus: diag.3 .1 as u32,
                migration_cost: diag.3 .2,
                warm_start: diag.4,
            },
        )
}

// ---------------------------------------------------------------------------
// Properties.

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn grids_round_trip_exactly(grid in grid()) {
        let encoded = encode_grid(&grid).expect("grids of valid axes always encode");
        prop_assert!(!encoded.contains('\n'), "frames must be single-line");
        let decoded = decode_grid(&encoded).expect("encoded grids always decode");
        prop_assert_eq!(&decoded, &grid);
        // Deterministic encoding: encode ∘ decode ∘ encode is a fixpoint.
        prop_assert_eq!(encode_grid(&decoded).unwrap(), encoded);
    }

    #[test]
    fn units_round_trip_exactly(series in 0usize..1_000, start in 0usize..10_000, len in 1usize..64) {
        let unit = WorkUnit { series, start, end: start + len };
        prop_assert_eq!(decode_unit(&encode_unit(&unit)).unwrap(), unit);
    }

    #[test]
    fn result_frames_round_trip_bit_for_bit(points in vec((0usize..4, point()), 0usize..9)) {
        // `None` entries (skipped points) interleave with solved points.
        let points: Vec<Option<SweepPoint>> = points
            .into_iter()
            .map(|(skip, p)| if skip == 0 { None } else { Some(p) })
            .collect();
        let encoded = encode_points(&points).expect("finite points always encode");
        let decoded = decode_points(&encoded).expect("encoded points always decode");
        prop_assert_eq!(decoded.len(), points.len());
        for (back, original) in decoded.iter().zip(&points) {
            match (back, original) {
                (None, None) => {}
                (Some(b), Some(o)) => {
                    // PartialEq would treat -0.0 == 0.0 and miss NaN; compare bits.
                    prop_assert_eq!(
                        b.initiation_interval_ms.to_bits(),
                        o.initiation_interval_ms.to_bits()
                    );
                    prop_assert_eq!(
                        b.average_utilization.to_bits(),
                        o.average_utilization.to_bits()
                    );
                    prop_assert_eq!(b.spreading.to_bits(), o.spreading.to_bits());
                    prop_assert_eq!(b.solve_seconds.to_bits(), o.solve_seconds.to_bits());
                    prop_assert_eq!(
                        b.resource_constraint.to_bits(),
                        o.resource_constraint.to_bits()
                    );
                    prop_assert_eq!(b.budget, o.budget);
                    prop_assert_eq!(b.relaxation_gap.to_bits(), o.relaxation_gap.to_bits());
                    prop_assert_eq!(b.bb_nodes, o.bb_nodes);
                    prop_assert_eq!(b.barrier_iterations, o.barrier_iterations);
                    prop_assert_eq!(b.factorizations, o.factorizations);
                    prop_assert_eq!(b.simplex_pivots, o.simplex_pivots);
                    prop_assert_eq!(b.dropped_cus, o.dropped_cus);
                    prop_assert_eq!(b.moved_cus, o.moved_cus);
                    prop_assert_eq!(b.migration_cost.to_bits(), o.migration_cost.to_bits());
                    prop_assert_eq!(b.warm_start, o.warm_start);
                }
                _ => return Err(proptest::TestCaseError::fail("Some/None mismatch")),
            }
        }
    }

    #[test]
    fn non_finite_floats_never_encode(p in point(), which in 0usize..4, inf in 0usize..2) {
        let bad = if inf == 0 { f64::NAN } else { f64::INFINITY };
        let mut point = p;
        match which {
            0 => point.initiation_interval_ms = bad,
            1 => point.spreading = bad,
            2 => point.relaxation_gap = bad,
            _ => point.solve_seconds = bad,
        }
        prop_assert!(point_to_json(&point).is_err());
    }
}
