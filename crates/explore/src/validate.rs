//! Cross-validation of swept designs against the discrete-event simulator.
//!
//! The analytic model behind every sweep point predicts
//! `II = max_k WCET_k / N_k`; the [`mfa_sim`] engine executes the allocation
//! event by event (optionally with bandwidth contention and jitter). Running
//! a sample of swept designs through the simulator catches modelling drift
//! between the optimizer and the executable semantics.

use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::solver::{Backend, SolveRequest};
use mfa_alloc::AllocationProblem;
use mfa_sim::{simulate, SimConfig};

use crate::grid::CaseSpec;
use crate::ExploreError;

/// One cross-validated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidationRow {
    /// Label of the validated case.
    pub case: String,
    /// FPGA count of the design.
    pub num_fpgas: usize,
    /// Per-FPGA resource constraint of the design.
    pub resource_constraint: f64,
    /// Analytic initiation interval of the allocation, in ms.
    pub predicted_ii_ms: f64,
    /// Simulated steady-state initiation interval, in ms.
    pub simulated_ii_ms: f64,
    /// `|simulated − predicted| / predicted`.
    pub relative_error: f64,
}

/// Re-solves each sampled constraint with GP+A and simulates the resulting
/// allocation. Skippable points (infeasible constraints) are omitted, under
/// the same policy as the sweeps.
///
/// # Errors
///
/// Returns [`ExploreError::Solver`] for non-skippable solver failures.
pub fn cross_validate_gpa(
    case: &CaseSpec,
    num_fpgas: usize,
    constraints: &[f64],
    options: &GpaOptions,
    config: &SimConfig,
) -> Result<Vec<CrossValidationRow>, ExploreError> {
    let mut rows = Vec::with_capacity(constraints.len());
    for &constraint in constraints {
        let instance = case.problem(num_fpgas, constraint);
        if let Some(row) =
            cross_validate_problem(case.label(), &instance, constraint, options, config)?
        {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Solves one arbitrary problem instance (any platform — heterogeneous
/// fleets included — and any per-resource budget) with GP+A and simulates
/// the resulting allocation. Returns `Ok(None)` for skippable points under
/// the same policy as the sweeps.
///
/// # Errors
///
/// Returns [`ExploreError::Solver`] for non-skippable solver failures.
pub fn cross_validate_problem(
    label: &str,
    instance: &AllocationProblem,
    resource_constraint: f64,
    options: &GpaOptions,
    config: &SimConfig,
) -> Result<Option<CrossValidationRow>, ExploreError> {
    let point = SolveRequest::new(instance)
        .backend(Backend::gpa_with(options.clone()))
        .solve_point();
    let outcome = match point {
        Ok(Some(report)) => report,
        Ok(None) => return Ok(None),
        Err(err) => {
            return Err(ExploreError::Solver {
                case: label.to_owned(),
                num_fpgas: instance.num_fpgas(),
                backend: "GP+A".to_owned(),
                resource_constraint,
                source: err,
            })
        }
    };
    let predicted_ii_ms = outcome.allocation.initiation_interval(instance);
    let result = simulate(instance, &outcome.allocation, config);
    Ok(Some(CrossValidationRow {
        case: label.to_owned(),
        num_fpgas: instance.num_fpgas(),
        resource_constraint,
        predicted_ii_ms,
        simulated_ii_ms: result.initiation_interval_ms,
        relative_error: result.ii_error_vs(predicted_ii_ms),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;

    #[test]
    fn simulated_ii_tracks_the_analytic_prediction() {
        let case = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        let config = SimConfig {
            num_items: 200,
            ..SimConfig::default()
        };
        let rows =
            cross_validate_gpa(&case, 2, &[0.65, 0.80], &GpaOptions::fast(), &config).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.predicted_ii_ms > 0.0);
            assert!(
                row.relative_error < 0.05,
                "{} @ {:.0}%: predicted {} vs simulated {}",
                row.case,
                row.resource_constraint * 100.0,
                row.predicted_ii_ms,
                row.simulated_ii_ms
            );
        }
    }

    #[test]
    fn heterogeneous_allocations_cross_validate() {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        let base = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let fleet = base.with_platform(HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        ));
        let row = cross_validate_problem(
            "Alex-16 on mixed pair",
            &fleet,
            0.70,
            &GpaOptions::fast(),
            &SimConfig {
                num_items: 200,
                ..SimConfig::default()
            },
        )
        .unwrap()
        .expect("the mixed pair is feasible at 70 %");
        assert_eq!(row.num_fpgas, 2);
        assert!(
            row.relative_error < 0.05,
            "predicted {} vs simulated {}",
            row.predicted_ii_ms,
            row.simulated_ii_ms
        );
    }

    #[test]
    fn infeasible_samples_are_skipped() {
        let case = CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas);
        let rows = cross_validate_gpa(
            &case,
            4,
            &[0.30, 0.75],
            &GpaOptions::fast(),
            &SimConfig {
                num_items: 100,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].resource_constraint - 0.75).abs() < 1e-12);
    }
}
