//! Warm-start cache for neighbouring budget points.

use mfa_alloc::solver::WarmStart;
use mfa_platform::ResourceBudget;

/// Euclidean distance between two per-FPGA budgets over the five budget
/// dimensions (the four resource-class fractions plus the bandwidth
/// fraction). For two uniform budgets this reduces to `2·|a − b|` — a
/// monotone function of the old scalar constraint distance, so nearest
/// lookups on classic constraint-only sweeps pick the same neighbours as the
/// scalar key did.
pub fn budget_distance(a: &ResourceBudget, b: &ResourceBudget) -> f64 {
    let ra = a.resource_fraction();
    let rb = b.resource_fraction();
    let deltas = [
        ra.lut - rb.lut,
        ra.ff - rb.ff,
        ra.bram - rb.bram,
        ra.dsp - rb.dsp,
        a.bandwidth_fraction() - b.bandwidth_fraction(),
    ];
    deltas.iter().map(|d| d * d).sum::<f64>().sqrt()
}

/// Remembers the GP+A state of already-solved budget points so that a
/// neighbouring point can be warm-started from the nearest one (nearest
/// under [`budget_distance`] — the relaxations of nearby budgets are close,
/// so the nearest hint narrows the bisection bracket the most and its
/// integer counts make the strongest branch-and-bound incumbent).
///
/// Entries hold the full [`WarmStart`] a report publishes, so the GP dual
/// state ([`WarmStart::gp_dual`] — the final barrier parameter plus
/// constraint multipliers) is cached and handed over alongside the primal
/// hints: a GP-backed sweep re-enters the barrier path near the neighbour's
/// endpoint instead of re-running the early centering rungs. The solver
/// validates the dual against the new point and silently drops it when
/// stale, so caching it can only reduce effort, never change a solution.
///
/// The executor keeps one cache per work-unit chunk. That choice is what
/// makes parallel and serial sweeps byte-identical: the chunk decomposition
/// depends only on the grid and the chunk size, never on the thread count or
/// on scheduling, so every point sees exactly the same cache state either
/// way.
///
/// Growth is bounded: the cache holds at most its capacity
/// ([`DEFAULT_CACHE_CAPACITY`] unless built with
/// [`WarmStartCache::with_capacity`]) and evicts the *oldest* entry when
/// full. FIFO eviction is deterministic — it depends only on the insertion
/// sequence, which itself depends only on the grid and chunk decomposition —
/// so a bounded cache preserves the serial/parallel byte-identity contract.
/// A hint can only narrow search brackets or seed incumbents that are
/// verified before use, so eviction (like any cache state) never changes the
/// achieved initiation interval.
#[derive(Debug, Clone)]
pub struct WarmStartCache {
    entries: Vec<(ResourceBudget, WarmStart)>,
    capacity: usize,
}

/// Default bound on [`WarmStartCache`] entries. Far above any chunk size the
/// executor produces (chunks default to 8 points), so eviction only engages
/// on deliberately tiny capacities or very long-lived caches.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Default for WarmStartCache {
    fn default() -> Self {
        WarmStartCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl WarmStartCache {
    /// An empty cache with the [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> Self {
        WarmStartCache::default()
    }

    /// An empty cache holding at most `capacity` entries (a capacity of 0
    /// caches nothing and every lookup misses).
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStartCache {
            entries: Vec::new(),
            capacity,
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the warm-start state of a solved budget point, evicting the
    /// oldest entry first when the cache is at capacity.
    ///
    /// Re-inserting an already-cached budget refreshes that entry *in place*
    /// (keeping its FIFO age): a long-lived cache fed repeated keys — a
    /// serving daemon seeing the same tenant's budget over and over — must
    /// not accumulate duplicates that consume capacity and FIFO-evict a live
    /// neighbour. The cache therefore never holds more entries than distinct
    /// budgets inserted.
    pub fn insert(&mut self, budget: &ResourceBudget, warm: WarmStart) {
        if self.capacity == 0 {
            return;
        }
        if let Some(entry) = self.entries.iter_mut().find(|(b, _)| b == budget) {
            entry.1 = warm;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((*budget, warm));
    }

    /// The cached state nearest to `budget` under [`budget_distance`], if
    /// any. Ties keep the earliest-inserted entry, so lookups are
    /// deterministic.
    pub fn nearest(&self, budget: &ResourceBudget) -> Option<&WarmStart> {
        self.nearest_entry(budget).map(|(_, warm)| warm)
    }

    /// Like [`WarmStartCache::nearest`], but also returns the distance of the
    /// winning entry, so two caches can be compared for the overall-nearest
    /// hint.
    pub fn nearest_entry(&self, budget: &ResourceBudget) -> Option<(f64, &WarmStart)> {
        self.entries
            .iter()
            .min_by(|(a, _), (b, _)| {
                budget_distance(a, budget).total_cmp(&budget_distance(b, budget))
            })
            .map(|(b, warm)| (budget_distance(b, budget), warm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_platform::ResourceVec;

    fn warm(ii: f64) -> WarmStart {
        WarmStart::none()
            .with_relaxed_ii(ii)
            .with_cu_counts(vec![1, 2])
    }

    #[test]
    fn nearest_picks_the_closest_uniform_budget() {
        let mut cache = WarmStartCache::new();
        assert!(cache.is_empty());
        assert!(cache.nearest(&ResourceBudget::uniform(0.6)).is_none());
        cache.insert(&ResourceBudget::uniform(0.55), warm(2.0));
        cache.insert(&ResourceBudget::uniform(0.85), warm(1.0));
        assert_eq!(cache.len(), 2);
        let near = |c: f64| cache.nearest(&ResourceBudget::uniform(c)).unwrap();
        assert!((near(0.60).relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
        assert!((near(0.80).relaxed_ii_ms.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_tie_keeps_the_earliest_insertion() {
        // Two cached budgets exactly equidistant (in the full 5-D metric)
        // from the query — dyadic fractions, so the distances are bit-exact
        // ties: the earliest-inserted entry must win, pinning the executor's
        // determinism under the budget-distance metric.
        let mut cache = WarmStartCache::new();
        cache.insert(&ResourceBudget::uniform(0.5), warm(2.0));
        cache.insert(&ResourceBudget::uniform(1.0), warm(1.0));
        assert!(
            (cache
                .nearest(&ResourceBudget::uniform(0.75))
                .unwrap()
                .relaxed_ii_ms
                .unwrap()
                - 2.0)
                .abs()
                < 1e-12
        );
        // Same tie, reversed insertion order: the other entry wins.
        let mut reversed = WarmStartCache::new();
        reversed.insert(&ResourceBudget::uniform(1.0), warm(1.0));
        reversed.insert(&ResourceBudget::uniform(0.5), warm(2.0));
        assert!(
            (reversed
                .nearest(&ResourceBudget::uniform(0.75))
                .unwrap()
                .relaxed_ii_ms
                .unwrap()
                - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn distance_separates_per_resource_budgets_with_equal_scalars() {
        // Two budgets share the same max component (the old scalar key) but
        // differ per class; the metric must tell them apart.
        let skewed = ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.3, 0.6), 1.0);
        let uniformish = ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.85, 0.9), 1.0);
        let query = ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.8, 0.9), 1.0);
        assert!(budget_distance(&query, &uniformish) < budget_distance(&query, &skewed));
        let mut cache = WarmStartCache::new();
        cache.insert(&skewed, warm(3.0));
        cache.insert(&uniformish, warm(4.0));
        assert!((cache.nearest(&query).unwrap().relaxed_ii_ms.unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cached_entries_carry_the_gp_dual_state() {
        use mfa_alloc::solver::DualWarmStart;
        let mut cache = WarmStartCache::new();
        let dual = DualWarmStart {
            barrier_t: 1.6e9,
            duals: vec![0.25, 0.0, 1.5],
        };
        cache.insert(
            &ResourceBudget::uniform(0.7),
            warm(1.5).with_gp_dual(dual.clone()),
        );
        let hit = cache.nearest(&ResourceBudget::uniform(0.72)).unwrap();
        // The dual rides the cache untouched, ready for the next solve.
        assert_eq!(hit.gp_dual.as_ref(), Some(&dual));
        assert!(!hit.is_empty());
    }

    #[test]
    fn capacity_bounds_growth_with_fifo_eviction() {
        let mut cache = WarmStartCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.insert(&ResourceBudget::uniform(0.5), warm(1.0));
        cache.insert(&ResourceBudget::uniform(0.6), warm(2.0));
        cache.insert(&ResourceBudget::uniform(0.7), warm(3.0));
        // Oldest entry (0.5) evicted; a query right on it now hits 0.6.
        assert_eq!(cache.len(), 2);
        let hit = cache.nearest(&ResourceBudget::uniform(0.5)).unwrap();
        assert!((hit.relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reinserting_a_cached_budget_refreshes_in_place() {
        // Duplicate keys used to append, consuming capacity and FIFO-evicting
        // a live neighbour; a refresh must update the entry instead.
        let mut cache = WarmStartCache::with_capacity(2);
        cache.insert(&ResourceBudget::uniform(0.5), warm(1.0));
        cache.insert(&ResourceBudget::uniform(0.9), warm(2.0));
        for _ in 0..10 {
            cache.insert(&ResourceBudget::uniform(0.5), warm(3.0));
        }
        assert_eq!(cache.len(), 2);
        // The refreshed entry serves the new state…
        let hit = cache.nearest(&ResourceBudget::uniform(0.5)).unwrap();
        assert!((hit.relaxed_ii_ms.unwrap() - 3.0).abs() < 1e-12);
        // …and its neighbour was never evicted.
        let other = cache.nearest(&ResourceBudget::uniform(0.9)).unwrap();
        assert!((other.relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = WarmStartCache::with_capacity(0);
        cache.insert(&ResourceBudget::uniform(0.5), warm(1.0));
        assert!(cache.is_empty());
        assert!(cache.nearest(&ResourceBudget::uniform(0.5)).is_none());
    }

    #[test]
    fn nearest_entry_reports_the_winning_distance() {
        let mut cache = WarmStartCache::new();
        cache.insert(&ResourceBudget::uniform(0.55), warm(2.0));
        cache.insert(&ResourceBudget::uniform(0.85), warm(1.0));
        let (dist, hit) = cache.nearest_entry(&ResourceBudget::uniform(0.60)).unwrap();
        assert!((dist - 2.0 * 0.05).abs() < 1e-12);
        assert!((hit.relaxed_ii_ms.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_distance_is_twice_the_scalar_distance() {
        let a = ResourceBudget::uniform(0.55);
        let b = ResourceBudget::uniform(0.85);
        assert!((budget_distance(&a, &b) - 2.0 * 0.30).abs() < 1e-12);
        assert_eq!(budget_distance(&a, &a), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The duplicate-key invariant: however inserts repeat, the cache
            /// never holds more entries than distinct budgets (and never more
            /// than its capacity).
            #[test]
            fn len_never_exceeds_distinct_keys(
                keys in proptest::collection::vec(1usize..=8, 0usize..64),
                capacity in 0usize..6,
            ) {
                let mut cache = WarmStartCache::with_capacity(capacity);
                let mut distinct = std::collections::BTreeSet::new();
                for (step, key) in keys.into_iter().enumerate() {
                    let budget = ResourceBudget::uniform(key as f64 / 10.0);
                    cache.insert(&budget, warm(step as f64));
                    distinct.insert(key);
                    prop_assert!(cache.len() <= distinct.len());
                    prop_assert!(cache.len() <= capacity);
                }
            }
        }
    }
}
