//! Warm-start cache for neighbouring constraint points.

use mfa_alloc::gpa::GpaWarmStart;

/// Remembers the GP+A state of already-solved constraint points so that a
/// neighbouring point can be warm-started from the nearest one (nearest in
/// constraint distance — the relaxations of adjacent budgets are close, so
/// the nearest hint narrows the bisection bracket the most and its integer
/// counts make the strongest branch-and-bound incumbent).
///
/// The executor keeps one cache per work-unit chunk. That choice is what
/// makes parallel and serial sweeps byte-identical: the chunk decomposition
/// depends only on the grid and the chunk size, never on the thread count or
/// on scheduling, so every point sees exactly the same cache state either
/// way.
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    entries: Vec<(f64, GpaWarmStart)>,
}

impl WarmStartCache {
    /// An empty cache.
    pub fn new() -> Self {
        WarmStartCache::default()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the warm-start state of a solved point.
    pub fn insert(&mut self, resource_constraint: f64, warm: GpaWarmStart) {
        self.entries.push((resource_constraint, warm));
    }

    /// The cached state nearest to `resource_constraint`, if any. Ties keep
    /// the earliest-inserted entry, so lookups are deterministic.
    pub fn nearest(&self, resource_constraint: f64) -> Option<&GpaWarmStart> {
        self.entries
            .iter()
            .min_by(|(a, _), (b, _)| {
                (a - resource_constraint)
                    .abs()
                    .total_cmp(&(b - resource_constraint).abs())
            })
            .map(|(_, warm)| warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(ii: f64) -> GpaWarmStart {
        GpaWarmStart {
            relaxed_ii_ms: ii,
            cu_counts: vec![1, 2],
        }
    }

    #[test]
    fn nearest_picks_the_closest_constraint() {
        let mut cache = WarmStartCache::new();
        assert!(cache.is_empty());
        assert!(cache.nearest(0.6).is_none());
        cache.insert(0.55, warm(2.0));
        cache.insert(0.85, warm(1.0));
        assert_eq!(cache.len(), 2);
        assert!((cache.nearest(0.60).unwrap().relaxed_ii_ms - 2.0).abs() < 1e-12);
        assert!((cache.nearest(0.80).unwrap().relaxed_ii_ms - 1.0).abs() < 1e-12);
        // Exactly halfway: the earliest insertion wins.
        assert!((cache.nearest(0.70).unwrap().relaxed_ii_ms - 2.0).abs() < 1e-12);
    }
}
