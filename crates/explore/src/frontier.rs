//! The reallocation frontier: migration weight × churn event sweeps.
//!
//! For an online serving fleet the interesting trade-off is not one solve
//! but the *frontier* between initiation interval and reconfiguration churn:
//! how many CUs each re-solve moves as the migration weight rises, and what
//! II the surviving CUs sustain during the transition. [`run_frontier`]
//! replays one committed churn trace once per (backend, migration weight)
//! combination through [`mfa_sim::replay_churn`] and flattens the step
//! reports into [`FrontierPoint`] rows — a table with one row per backend ×
//! weight × event, plus a `base` row per series anchoring the pre-churn II.
//!
//! The sweep is fully deterministic: a fixed spec yields byte-identical
//! CSV/JSON exports run over run (the simulator is seeded, the solvers are
//! deterministic, and the iteration order is the spec's own).

use mfa_alloc::realloc::MigrationCost;
use mfa_alloc::solver::Backend;
use mfa_alloc::AllocationProblem;
use mfa_sim::{replay_churn, ChurnConfig, ChurnEvent, SimConfig};

use crate::error::ExploreError;
use crate::export::{csv_field, json_f64, json_string};

/// Declarative spec of a reallocation-frontier sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSpec {
    /// The pre-churn problem (no reallocation spec; the sweep attaches one
    /// per weight point).
    pub base: AllocationProblem,
    /// The churn trace replayed for every series.
    pub trace: Vec<ChurnEvent>,
    /// Migration weight axis (each weight must be finite and nonnegative).
    pub weights: Vec<f64>,
    /// Solver backend axis.
    pub backends: Vec<Backend>,
    /// Optional hard cap on moved CUs per re-solve.
    pub moved_bound: Option<u32>,
    /// Simulation parameters of the II measurements.
    pub sim: SimConfig,
}

impl FrontierSpec {
    /// A spec over `base` and `trace` with the given weight axis, all
    /// defaults otherwise.
    pub fn new(base: AllocationProblem, trace: Vec<ChurnEvent>, weights: Vec<f64>) -> Self {
        FrontierSpec {
            base,
            trace,
            weights,
            backends: vec![Backend::gpa_fast()],
            moved_bound: None,
            sim: SimConfig::default(),
        }
    }
}

/// One row of the reallocation-frontier table.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Label of the solver backend.
    pub backend: String,
    /// Migration weight of the series.
    pub weight: f64,
    /// Position in the trace: 0 is the pre-churn base solve, event `i` of
    /// the trace is row `i + 1`.
    pub event_index: usize,
    /// Human-readable event label (`"base"` for the anchor row).
    pub event: String,
    /// Simulated steady-state II of the (re-)solved placement, ms.
    pub steady_ii_ms: f64,
    /// Analytic II sustained during reconfiguration by the CUs common to
    /// the old and new placements (infinite when the pipeline stalls; equal
    /// to `steady_ii_ms` on the base row).
    pub transition_ii_ms: f64,
    /// CUs newly configured by this step's re-solve (zero on the base row).
    pub moved_cus: u32,
    /// Unweighted priced movement of this step's re-solve.
    pub migration_cost: f64,
}

/// Runs the frontier sweep: every backend × migration weight replays the
/// trace once, in spec order.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] for an empty axis or an invalid
/// weight, and [`ExploreError::Churn`] when a replay fails.
pub fn run_frontier(spec: &FrontierSpec) -> Result<Vec<FrontierPoint>, ExploreError> {
    if spec.weights.is_empty() {
        return Err(ExploreError::InvalidGrid(
            "a frontier sweep needs at least one migration weight".into(),
        ));
    }
    if spec.backends.is_empty() {
        return Err(ExploreError::InvalidGrid(
            "a frontier sweep needs at least one backend".into(),
        ));
    }
    let mut points = Vec::new();
    for backend in &spec.backends {
        for &weight in &spec.weights {
            let migration = MigrationCost::new(weight)
                .map_err(|err| ExploreError::InvalidGrid(err.to_string()))?;
            let config = ChurnConfig {
                migration,
                moved_bound: spec.moved_bound,
                sim: spec.sim.clone(),
            };
            let replay = replay_churn(&spec.base, &spec.trace, backend, &config)
                .map_err(|err| ExploreError::Churn(err.to_string()))?;
            points.push(FrontierPoint {
                backend: backend.label().to_owned(),
                weight,
                event_index: 0,
                event: "base".into(),
                steady_ii_ms: replay.base_ii_ms,
                transition_ii_ms: replay.base_ii_ms,
                moved_cus: 0,
                migration_cost: 0.0,
            });
            for (i, step) in replay.steps.iter().enumerate() {
                points.push(FrontierPoint {
                    backend: backend.label().to_owned(),
                    weight,
                    event_index: i + 1,
                    event: step.event.clone(),
                    steady_ii_ms: step.steady_ii_ms,
                    transition_ii_ms: step.transition_ii_ms,
                    moved_cus: step.moved_cus,
                    migration_cost: step.migration_cost,
                });
            }
        }
    }
    Ok(points)
}

/// Serializes frontier rows as CSV:
/// `backend,migration_weight,event_index,event,steady_ii_ms,transition_ii_ms,moved_cus,migration_cost`.
/// Non-finite transition IIs (stalled pipelines) print as `inf`.
pub fn frontier_to_csv(points: &[FrontierPoint]) -> String {
    let mut out = String::from(
        "backend,migration_weight,event_index,event,\
         steady_ii_ms,transition_ii_ms,moved_cus,migration_cost\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            csv_field(&p.backend),
            p.weight,
            p.event_index,
            csv_field(&p.event),
            p.steady_ii_ms,
            p.transition_ii_ms,
            p.moved_cus,
            p.migration_cost
        ));
    }
    out
}

/// Serializes frontier rows as a JSON array, one object per row. Non-finite
/// transition IIs map to `null`, keeping the output standard JSON.
pub fn frontier_to_json(points: &[FrontierPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"backend\": {}, \"migration_weight\": {}, \"event_index\": {}, \
             \"event\": {}, \"steady_ii_ms\": {}, \"transition_ii_ms\": {}, \
             \"moved_cus\": {}, \"migration_cost\": {}}}",
            json_string(&p.backend),
            json_f64(p.weight),
            p.event_index,
            json_string(&p.event),
            json_f64(p.steady_ii_ms),
            json_f64(p.transition_ii_ms),
            p.moved_cus,
            json_f64(p.migration_cost)
        ));
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::{GoalWeights, Kernel};
    use mfa_platform::{
        DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec,
    };
    use mfa_sim::parse_trace;

    fn base_problem() -> AllocationProblem {
        AllocationProblem::builder()
            .kernels(vec![
                Kernel::new("front", 4.0, ResourceVec::bram_dsp(0.02, 0.08), 0.01).unwrap(),
                Kernel::new("back", 8.0, ResourceVec::bram_dsp(0.02, 0.08), 0.01).unwrap(),
            ])
            .platform(HeterogeneousPlatform::new(
                "2×VU9P + 1×KU115",
                vec![
                    DeviceGroup::new(FpgaDevice::vu9p(), 2),
                    DeviceGroup::new(FpgaDevice::ku115(), 1),
                ],
            ))
            .budget(ResourceBudget::uniform(0.7))
            .weights(GoalWeights::ii_only())
            .build()
            .unwrap()
    }

    fn sample_spec() -> FrontierSpec {
        let trace = parse_trace("drift back 0.5\nadd probe 3.0 0.03 0.06 0.01\n").unwrap();
        FrontierSpec {
            backends: vec![Backend::greedy(), Backend::gpa_fast()],
            ..FrontierSpec::new(base_problem(), trace, vec![0.0, 0.5])
        }
    }

    #[test]
    fn frontier_rows_cover_every_backend_weight_and_event() {
        let spec = sample_spec();
        let points = run_frontier(&spec).unwrap();
        // 2 backends × 2 weights × (base + 2 events).
        assert_eq!(points.len(), 2 * 2 * 3);
        for p in &points {
            assert!(p.steady_ii_ms > 0.0);
            assert!(p.transition_ii_ms >= p.steady_ii_ms * 0.99);
        }
        let base_rows = points.iter().filter(|p| p.event == "base").count();
        assert_eq!(base_rows, 4);
        // Determinism: a second run is identical.
        assert_eq!(run_frontier(&spec).unwrap(), points);
    }

    #[test]
    fn higher_weights_never_move_more_cus() {
        let spec = sample_spec();
        let points = run_frontier(&spec).unwrap();
        for backend in spec.backends.iter().map(Backend::label) {
            let rows_at = |weight: f64| -> Vec<&FrontierPoint> {
                points
                    .iter()
                    .filter(|p| p.backend == backend && p.weight == weight)
                    .collect()
            };
            let moved = |rows: &[&FrontierPoint]| -> u32 { rows.iter().map(|p| p.moved_cus).sum() };
            let cold = rows_at(0.0);
            let penalized = rows_at(0.5);
            assert_eq!(cold.len(), 3, "{backend}: base row + 2 events");
            assert_eq!(penalized.len(), 3);
            assert!(
                moved(&penalized) <= moved(&cold),
                "{backend}: weight 0.5 moved {} vs weight 0.0 moved {}",
                moved(&penalized),
                moved(&cold)
            );
        }
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let spec = FrontierSpec {
            backends: vec![Backend::greedy()],
            ..sample_spec()
        };
        let points = run_frontier(&spec).unwrap();
        let csv = frontier_to_csv(&points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + points.len());
        assert!(lines[0].starts_with("backend,migration_weight,event_index,event"));
        assert_eq!(lines[1].split(',').count(), 8);
        assert!(lines[1].contains(",base,"));

        let json = frontier_to_json(&points);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"backend\"").count(), points.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        assert_eq!(frontier_to_csv(&run_frontier(&spec).unwrap()), csv);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = sample_spec();
        spec.weights.clear();
        assert!(matches!(
            run_frontier(&spec),
            Err(ExploreError::InvalidGrid(_))
        ));
        let mut spec = sample_spec();
        spec.backends.clear();
        assert!(matches!(
            run_frontier(&spec),
            Err(ExploreError::InvalidGrid(_))
        ));
        let mut spec = sample_spec();
        spec.weights = vec![-1.0];
        assert!(matches!(
            run_frontier(&spec),
            Err(ExploreError::InvalidGrid(_))
        ));
    }
}
