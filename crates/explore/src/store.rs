//! Content-addressed, resumable sweep store.
//!
//! Persists every solved sweep point under a [`Fingerprint`] of everything
//! that determines its result — the fully-instantiated
//! [`AllocationProblem`](mfa_alloc::AllocationProblem) at the grid point, the
//! behaviour-relevant solver configuration (label stripped), the executor's
//! warm-start flag and the code-revision [`STORE_VERSION`] — so that
//!
//! * a re-run of the *same* grid replays every stored unit and computes
//!   nothing,
//! * a killed sweep resumes where it stopped (persistence is per work unit
//!   and atomic, so a partial run leaves only whole, valid units behind), and
//! * an *extended or shifted* grid legally warm-starts from stored
//!   neighbouring points — including exact-backend B&B incumbents, which
//!   in-process sweeps must keep cold for partition-independence.
//!
//! # Layout
//!
//! A store is a directory of append-only JSON-lines segment files, one per
//! committed work unit, named `seg-<fingerprint>.jsonl` after the unit's
//! content. Each line is one entry:
//!
//! ```json
//! {"v":1,"fp":"<32 hex>","series":"<32 hex>","budget":{…},"point":{…}|null,"warm":{…}|null}
//! ```
//!
//! Segments are committed by writing to a `.tmp` sibling and renaming — the
//! POSIX-atomic publish — so no reader ever observes a torn segment; orphaned
//! `.tmp` files from killed runs are ignored on open. Corrupt, truncated or
//! version-mismatched lines are counted and skipped (a miss, never a panic):
//! the store is a cache, and the worst a damaged store can do is cause
//! recomputation.
//!
//! # Determinism
//!
//! Replay is only attempted for units *every* point of which is stored: a
//! fully-stored unit's bytes are exactly what [`compute_unit`] would
//! reproduce, because a unit's result is a pure function of `(grid, unit,
//! warm_start)` and the fingerprint pins all three. Neighbour warm starts
//! come from a snapshot taken at planning time and are restricted to stored
//! points **outside** the current grid (see [`plan_store`]); re-runs and
//! resumes of an identical grid therefore see no store hints at all and stay
//! byte-identical to a cold serial sweep, while extended grids get hints that
//! are a deterministic function of (grid, snapshot) — independent of thread
//! count, worker count, chunk assignment or completion order.
//!
//! [`compute_unit`]: crate::compute_unit

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use mfa_alloc::explore::SweepPoint;
use mfa_alloc::fingerprint::Fingerprint;
use mfa_alloc::solver::WarmStart;
use mfa_platform::ResourceBudget;

use crate::executor::{UnitOutput, WorkUnit};
use crate::grid::SweepGrid;
use crate::json::Json;
use crate::wire::{self, WireError};
use crate::ExploreError;

/// Store format revision. Bumped whenever the entry encoding *or any code
/// that changes solver output* is revised; entries recorded under a different
/// version are counted as mismatches and recomputed.
pub const STORE_VERSION: usize = 1;

/// One stored sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Fingerprint of the point's series with the budget dimension erased —
    /// all points of one (case, platform, backend, options) combination share
    /// it, whatever their budget, which is what makes neighbour lookup a
    /// simple equality scan.
    pub series: Fingerprint,
    /// The fully-resolved per-FPGA budget of the point (the neighbour-metric
    /// key for warm-start seeding).
    pub budget: ResourceBudget,
    /// The solved point, or `None` for a skipped (infeasible/unplaceable)
    /// budget — skips are results too and replay as such.
    pub point: Option<SweepPoint>,
    /// The warm-start state the point's solve published (empty for skipped
    /// points).
    pub warm: WarmStart,
}

/// An on-disk sweep store: a directory of segment files plus an in-memory
/// index over every valid entry.
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    index: HashMap<Fingerprint, StoreEntry>,
    segments: usize,
    orphan_tmp: usize,
    duplicate_entries: usize,
    corrupt_entries: usize,
    version_mismatches: usize,
}

/// The store surface the executors and the serving layer consume.
///
/// Implemented by the on-disk [`SweepStore`] and by `mfa_storenet`'s
/// `RemoteStore` network client, so the threaded executor, the sharded
/// dispatcher and the `mfa_serve` warm-cache spill all run against one
/// logical cache whether it lives in a local directory or behind a
/// store-server on another host. Methods take `&mut self` because a remote
/// implementation performs socket I/O per call.
pub trait ResultStore {
    /// Batched point lookup: one slot per fingerprint, `None` for misses.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] only for transport/directory-level
    /// failures; absent, corrupt or version-mismatched entries are misses.
    fn get_many(&mut self, fps: &[Fingerprint]) -> Result<Vec<Option<StoreEntry>>, ExploreError>;

    /// Every stored entry of one series, sorted by fingerprint (used by the
    /// serving layer to rewarm a whole request family at once).
    ///
    /// # Errors
    ///
    /// As [`get_many`](Self::get_many).
    fn get_series(
        &mut self,
        series: &Fingerprint,
    ) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError>;

    /// A snapshot of every stored entry, sorted by fingerprint (the seed
    /// universe [`plan_store`] draws neighbour warm starts from).
    ///
    /// # Errors
    ///
    /// As [`get_many`](Self::get_many).
    fn snapshot(&mut self) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError>;

    /// Persists a batch of entries atomically (one work unit's points).
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] on I/O, transport or encoding failure.
    fn put(&mut self, entries: Vec<(Fingerprint, StoreEntry)>) -> Result<(), ExploreError>;

    /// Lines observed corrupt or truncated when the backing store was
    /// opened/scanned (server-side damage for a remote store).
    fn corrupt_count(&self) -> usize;

    /// Entries skipped for a [`STORE_VERSION`] mismatch when the backing
    /// store was opened/scanned.
    fn version_mismatch_count(&self) -> usize;
}

impl ResultStore for SweepStore {
    fn get_many(&mut self, fps: &[Fingerprint]) -> Result<Vec<Option<StoreEntry>>, ExploreError> {
        Ok(fps.iter().map(|fp| self.index.get(fp).cloned()).collect())
    }

    fn get_series(
        &mut self,
        series: &Fingerprint,
    ) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        let mut entries: Vec<(Fingerprint, StoreEntry)> = self
            .index
            .iter()
            .filter(|(_, entry)| entry.series == *series)
            .map(|(fp, entry)| (*fp, entry.clone()))
            .collect();
        entries.sort_by_key(|(fp, _)| *fp);
        Ok(entries)
    }

    fn snapshot(&mut self) -> Result<Vec<(Fingerprint, StoreEntry)>, ExploreError> {
        let mut entries: Vec<(Fingerprint, StoreEntry)> = self
            .index
            .iter()
            .map(|(fp, entry)| (*fp, entry.clone()))
            .collect();
        entries.sort_by_key(|(fp, _)| *fp);
        Ok(entries)
    }

    fn put(&mut self, entries: Vec<(Fingerprint, StoreEntry)>) -> Result<(), ExploreError> {
        self.commit(entries)
    }

    fn corrupt_count(&self) -> usize {
        self.corrupt_entries
    }

    fn version_mismatch_count(&self) -> usize {
        self.version_mismatches
    }
}

/// A point-in-time inventory of a store directory's health, as reported by
/// [`SweepStore::stats`] (and served over the wire by `mfa_storenet`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Valid entries in the index.
    pub entries: usize,
    /// Segment files on disk.
    pub segments: usize,
    /// Orphaned `.tmp` files left by killed commits.
    pub orphan_tmp: usize,
    /// Stored lines shadowed by a later line with the same fingerprint.
    pub duplicate_entries: usize,
    /// Corrupt or truncated lines skipped while opening.
    pub corrupt_entries: usize,
    /// Lines skipped for a [`STORE_VERSION`] mismatch while opening.
    pub version_mismatches: usize,
}

/// What one [`SweepStore::gc`] compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Old segment files folded into the compacted segment and deleted.
    pub segments_folded: usize,
    /// Orphaned `.tmp` files removed.
    pub orphans_removed: usize,
    /// Valid entries carried into the compacted segment.
    pub entries_kept: usize,
    /// Duplicate fingerprints folded down to their surviving line.
    pub duplicates_folded: usize,
    /// Corrupt and version-mismatched lines dropped from disk.
    pub lines_dropped: usize,
}

fn io_err(context: &str, path: &Path, err: std::io::Error) -> ExploreError {
    ExploreError::Store(format!("{context} {}: {err}", path.display()))
}

fn codec_err(err: WireError) -> ExploreError {
    ExploreError::Store(format!("store codec: {err}"))
}

impl SweepStore {
    /// Opens (creating if needed) the store at `dir` and indexes every valid
    /// entry in it. Corrupt or truncated lines and entries recorded under a
    /// different [`STORE_VERSION`] are skipped and counted; orphaned `.tmp`
    /// files from killed commits are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] only for directory-level I/O failures
    /// (cannot create or list `dir`); damaged contents never error.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SweepStore, ExploreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("cannot create store directory", &dir, e))?;
        let mut segments: Vec<PathBuf> = Vec::new();
        let mut orphan_tmp = 0usize;
        for entry in
            fs::read_dir(&dir).map_err(|e| io_err("cannot list store directory", &dir, e))?
        {
            let Ok(path) = entry.map(|e| e.path()) else {
                continue;
            };
            if !path.is_file() {
                continue;
            }
            match path.extension().and_then(|e| e.to_str()) {
                Some("jsonl") => segments.push(path),
                Some("tmp") => orphan_tmp += 1,
                _ => {}
            }
        }
        // Deterministic load order (directory iteration order is not).
        segments.sort();

        let mut store = SweepStore {
            dir,
            index: HashMap::new(),
            segments: segments.len(),
            orphan_tmp,
            duplicate_entries: 0,
            corrupt_entries: 0,
            version_mismatches: 0,
        };
        for segment in segments {
            let Ok(contents) = fs::read_to_string(&segment) else {
                // An unreadable segment is damage, not a fatal condition.
                store.corrupt_entries += 1;
                continue;
            };
            for line in contents.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_entry(line) {
                    Ok(Some((fp, entry))) => {
                        if store.index.insert(fp, entry).is_some() {
                            store.duplicate_entries += 1;
                        }
                    }
                    Ok(None) => store.version_mismatches += 1,
                    Err(_) => store.corrupt_entries += 1,
                }
            }
        }
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when the store holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lines skipped as corrupt or truncated while opening the store.
    pub fn corrupt_entries(&self) -> usize {
        self.corrupt_entries
    }

    /// Valid-looking lines skipped because they were recorded under a
    /// different [`STORE_VERSION`].
    pub fn version_mismatches(&self) -> usize {
        self.version_mismatches
    }

    /// Looks up a stored point by fingerprint.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<&StoreEntry> {
        self.index.get(fp)
    }

    /// Iterates over all indexed entries (unspecified order; callers that
    /// need determinism must sort).
    pub fn entries(&self) -> impl Iterator<Item = (&Fingerprint, &StoreEntry)> {
        self.index.iter()
    }

    /// Commits a batch of entries as one new segment, atomically: the
    /// segment is fully written and fsynced to a `.tmp` sibling, then
    /// renamed into place. A crash at any moment leaves either the complete
    /// segment or an ignored orphan — never a torn file.
    ///
    /// The segment name is derived from the batch's fingerprints, so
    /// re-committing identical content rewrites the same file instead of
    /// growing the store.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] on I/O or encoding failure.
    pub fn commit(&mut self, entries: Vec<(Fingerprint, StoreEntry)>) -> Result<(), ExploreError> {
        if entries.is_empty() {
            return Ok(());
        }
        let (_, rewrote_existing) = self.write_segment(&entries)?;
        if !rewrote_existing {
            self.segments += 1;
        }
        for (fp, entry) in entries {
            if self.index.insert(fp, entry).is_some() && !rewrote_existing {
                // A fresh segment restating an already-indexed fingerprint
                // duplicates that line on disk until the next gc() folds it.
                self.duplicate_entries += 1;
            }
        }
        Ok(())
    }

    /// A health inventory of the store: entry/segment counts plus every
    /// damage counter observed when the directory was opened.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.index.len(),
            segments: self.segments,
            orphan_tmp: self.orphan_tmp,
            duplicate_entries: self.duplicate_entries,
            corrupt_entries: self.corrupt_entries,
            version_mismatches: self.version_mismatches,
        }
    }

    /// Compacts the store in place: removes orphaned `.tmp` files, folds
    /// every valid indexed entry into one canonical segment (sorted by
    /// fingerprint, duplicates collapsed), and deletes the old segments —
    /// dropping corrupt and version-mismatched lines from disk in the
    /// process. The index is unchanged; the damage counters reset to what a
    /// fresh open of the compacted directory would observe.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Store`] on I/O or encoding failure; a partial
    /// failure leaves only whole, valid segments behind (the compacted
    /// segment publishes atomically before any old segment is removed).
    pub fn gc(&mut self) -> Result<GcReport, ExploreError> {
        let mut orphans_removed = 0usize;
        let mut old_segments: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&self.dir)
            .map_err(|e| io_err("cannot list store directory", &self.dir, e))?
        {
            let Ok(path) = entry.map(|e| e.path()) else {
                continue;
            };
            if !path.is_file() {
                continue;
            }
            match path.extension().and_then(|e| e.to_str()) {
                Some("tmp") => {
                    fs::remove_file(&path).map_err(|e| io_err("cannot remove orphan", &path, e))?;
                    orphans_removed += 1;
                }
                Some("jsonl") => old_segments.push(path),
                _ => {}
            }
        }

        let mut entries: Vec<(Fingerprint, StoreEntry)> = self
            .index
            .iter()
            .map(|(fp, entry)| (*fp, entry.clone()))
            .collect();
        entries.sort_by_key(|(fp, _)| *fp);

        let keep = if entries.is_empty() {
            None
        } else {
            Some(self.write_segment(&entries)?.0)
        };
        let mut segments_folded = 0usize;
        for segment in old_segments {
            if Some(&segment) == keep.as_ref() {
                continue;
            }
            fs::remove_file(&segment).map_err(|e| io_err("cannot remove segment", &segment, e))?;
            segments_folded += 1;
        }

        let report = GcReport {
            segments_folded,
            orphans_removed,
            entries_kept: entries.len(),
            duplicates_folded: self.duplicate_entries,
            lines_dropped: self.corrupt_entries + self.version_mismatches,
        };
        self.segments = usize::from(keep.is_some());
        self.orphan_tmp = 0;
        self.duplicate_entries = 0;
        self.corrupt_entries = 0;
        self.version_mismatches = 0;
        Ok(report)
    }

    /// Writes `entries` as one content-addressed segment (tmp + fsync +
    /// rename) and returns the published path plus whether a segment of the
    /// same name was already on disk. Does not touch the index.
    fn write_segment(
        &self,
        entries: &[(Fingerprint, StoreEntry)],
    ) -> Result<(PathBuf, bool), ExploreError> {
        let mut body = String::new();
        let hexes: Vec<String> = entries.iter().map(|(fp, _)| fp.to_hex()).collect();
        let parts: Vec<&str> = hexes.iter().map(String::as_str).collect();
        let name = Fingerprint::of_parts(STORE_VERSION as u64, &parts);
        for (fp, entry) in entries {
            body.push_str(&entry_to_json(fp, entry)?.to_string());
            body.push('\n');
        }

        let final_path = self.dir.join(format!("seg-{}.jsonl", name.to_hex()));
        let tmp_path = self.dir.join(format!("seg-{}.tmp", name.to_hex()));
        let existed = final_path.exists();
        {
            let mut file = fs::File::create(&tmp_path)
                .map_err(|e| io_err("cannot create segment", &tmp_path, e))?;
            file.write_all(body.as_bytes())
                .map_err(|e| io_err("cannot write segment", &tmp_path, e))?;
            file.sync_all()
                .map_err(|e| io_err("cannot sync segment", &tmp_path, e))?;
        }
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| io_err("cannot publish segment", &final_path, e))?;
        Ok((final_path, existed))
    }
}

// ---------------------------------------------------------------------------
// Entry codec.

/// Encodes one `(fingerprint, entry)` pair as its canonical store-line JSON
/// document — the exact bytes a segment file holds, and the entry payload
/// `mfa_storenet` carries in its `put`/`entries` frames.
///
/// # Errors
///
/// Returns [`ExploreError::Store`] if the entry holds non-finite floats
/// (impossible for solver-produced entries).
pub fn entry_to_json(fp: &Fingerprint, entry: &StoreEntry) -> Result<Json, ExploreError> {
    let point = match &entry.point {
        Some(p) => wire::point_to_json(p).map_err(codec_err)?,
        None => Json::Null,
    };
    let warm = if entry.warm.is_empty() {
        Json::Null
    } else {
        wire::warm_hint_to_json(&entry.warm).map_err(codec_err)?
    };
    Ok(Json::obj(vec![
        ("v", Json::Num(STORE_VERSION as f64)),
        ("fp", Json::str(fp.to_hex())),
        ("series", Json::str(entry.series.to_hex())),
        (
            "budget",
            wire::budget_to_json(&entry.budget).map_err(codec_err)?,
        ),
        ("point", point),
        ("warm", warm),
    ]))
}

/// Decodes one store line. `Ok(None)` is a version mismatch; `Err` is
/// corruption. Both are misses for the caller.
fn decode_entry(line: &str) -> Result<Option<(Fingerprint, StoreEntry)>, WireError> {
    let doc = Json::parse(line).map_err(|e| WireError::Parse(e.to_string()))?;
    entry_from_json(&doc)
}

/// Decodes one store-entry document (the inverse of [`entry_to_json`]).
/// `Ok(None)` is a [`STORE_VERSION`] mismatch; `Err` is corruption. Both are
/// misses, never fatal, for every caller in the stack.
///
/// # Errors
///
/// Returns [`WireError`] when the document does not match the entry schema.
pub fn entry_from_json(doc: &Json) -> Result<Option<(Fingerprint, StoreEntry)>, WireError> {
    let version = doc
        .get("v")
        .and_then(Json::as_usize)
        .ok_or_else(|| WireError::Schema("missing store version".into()))?;
    if version != STORE_VERSION {
        return Ok(None);
    }
    let parse_fp = |key: &str| -> Result<Fingerprint, WireError> {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::Schema(format!("field '{key}' must be a string")))?
            .parse()
            .map_err(|_| WireError::Invalid(format!("field '{key}' is not a fingerprint")))
    };
    let fp = parse_fp("fp")?;
    let series = parse_fp("series")?;
    let budget = wire::budget_from_json(
        doc.get("budget")
            .ok_or_else(|| WireError::Schema("missing field 'budget'".into()))?,
    )?;
    let point = match doc
        .get("point")
        .ok_or_else(|| WireError::Schema("missing field 'point'".into()))?
    {
        Json::Null => None,
        other => Some(wire::point_from_json(other)?),
    };
    let warm = match doc
        .get("warm")
        .ok_or_else(|| WireError::Schema("missing field 'warm'".into()))?
    {
        Json::Null => WarmStart::none(),
        other => wire::warm_hint_from_json(other)?,
    };
    Ok(Some((
        fp,
        StoreEntry {
            series,
            budget,
            point,
            warm,
        },
    )))
}

// ---------------------------------------------------------------------------
// Fingerprints.

/// Canonical JSON string of everything behaviour-relevant about a series'
/// solve configuration: the solver kind and options (label stripped, so a
/// rename never invalidates results), the grid's request riders and the
/// executor warm-start mode (warm and cold sweeps may legally differ on
/// II ties, so they must not share entries).
fn config_json(grid: &SweepGrid, series: usize, warm_start: bool) -> Result<String, ExploreError> {
    let (_, _, backend_idx) = grid.series_key(series);
    let backend = wire::solver_config_to_json(&grid.backends[backend_idx]).map_err(codec_err)?;
    let deadline = match grid.point_deadline_seconds() {
        Some(seconds) if seconds.is_finite() => Json::Num(seconds),
        _ => Json::Null,
    };
    Ok(Json::obj(vec![
        ("backend", backend),
        ("skip_policy", Json::str(grid.skip_policy().label())),
        ("point_deadline_seconds", deadline),
        ("warm_start", Json::Bool(warm_start)),
    ])
    .to_string())
}

/// The fully-instantiated problem document at one grid point, plus its
/// resolved per-FPGA budget.
fn problem_doc(
    grid: &SweepGrid,
    series: usize,
    budget_idx: usize,
) -> Result<(Json, ResourceBudget), ExploreError> {
    let (case_idx, platform_idx, _) = grid.series_key(series);
    let instance =
        grid.cases[case_idx].problem_at(&grid.platforms[platform_idx], &grid.budgets[budget_idx]);
    let budget = *instance.budget();
    let doc = wire::problem_to_json(&instance).map_err(codec_err)?;
    Ok((doc, budget))
}

/// Erases the budget dimension from a problem document, leaving the part
/// shared by all points of a series.
fn erase_budget(doc: &Json) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(key, value)| {
                    if key == "budget" {
                        (key.clone(), Json::Null)
                    } else {
                        (key.clone(), value.clone())
                    }
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Content fingerprint of one grid point: a pure function of the
/// fully-instantiated problem at `(series, budget_idx)`, the series'
/// solver configuration, the executor warm-start mode and [`STORE_VERSION`].
/// Chunking and thread/worker partition never enter, so the fingerprint is
/// invariant under them by construction.
///
/// # Errors
///
/// Returns [`ExploreError::Store`] if the grid point cannot be canonically
/// encoded (non-finite floats — impossible for a validly-built grid).
pub fn point_fingerprint(
    grid: &SweepGrid,
    series: usize,
    budget_idx: usize,
    warm_start: bool,
) -> Result<Fingerprint, ExploreError> {
    let config = config_json(grid, series, warm_start)?;
    let (doc, _) = problem_doc(grid, series, budget_idx)?;
    Ok(Fingerprint::of_parts(
        STORE_VERSION as u64,
        &[&config, &doc.to_string()],
    ))
}

/// Series fingerprint: like [`point_fingerprint`] but with the budget erased
/// from the problem document, so every budget point of one (case, platform,
/// backend) combination shares it. Neighbour warm starts only flow between
/// points with equal series fingerprints.
///
/// # Errors
///
/// Returns [`ExploreError::Store`] if the grid point cannot be canonically
/// encoded.
pub fn series_fingerprint(
    grid: &SweepGrid,
    series: usize,
    warm_start: bool,
) -> Result<Fingerprint, ExploreError> {
    let config = config_json(grid, series, warm_start)?;
    // The budget axis does not affect the series identity, so any budget
    // index yields the same document once the budget is erased.
    let (doc, _) = problem_doc(grid, series, 0)?;
    Ok(Fingerprint::of_parts(
        STORE_VERSION as u64,
        &[&config, &erase_budget(&doc).to_string()],
    ))
}

// ---------------------------------------------------------------------------
// Planning.

/// The store's verdict on one [`WorkUnit`].
#[derive(Debug, Clone)]
pub struct UnitPlan {
    /// Series fingerprint of the unit.
    pub series_fp: Fingerprint,
    /// Point fingerprints, one per budget point of the unit.
    pub point_fps: Vec<Fingerprint>,
    /// Resolved per-FPGA budgets, parallel to `point_fps`.
    pub budgets: Vec<ResourceBudget>,
    /// `Some(points)` when *every* point of the unit is stored: the unit
    /// replays verbatim and is never computed. Partially-stored units
    /// recompute whole — their in-unit warm-start cache state would
    /// otherwise be unreconstructible.
    pub cached: Option<Vec<Option<SweepPoint>>>,
    /// Warm-start seeds for a fresh unit: stored neighbours of the same
    /// series from *outside* the current grid, tightest budget first. Empty
    /// whenever the store only holds points of this very grid — which is
    /// what keeps re-runs and resumes byte-identical to a cold sweep.
    pub seeds: Vec<(ResourceBudget, WarmStart)>,
}

/// A store-informed execution plan over a unit list.
#[derive(Debug, Clone)]
pub struct StorePlan {
    /// One plan per work unit, parallel to the planned unit list.
    pub units: Vec<UnitPlan>,
}

impl StorePlan {
    /// Number of units that replay from the store.
    pub fn units_replayed(&self) -> usize {
        self.units.iter().filter(|u| u.cached.is_some()).count()
    }
}

/// Plans a sweep against the store: fingerprints every point, marks
/// fully-stored units for replay, and collects neighbour warm-start seeds
/// for the rest.
///
/// Seeds are restricted to stored points **outside** the current grid's
/// fingerprint set. The snapshot the seeds are drawn from is fixed here, at
/// planning time — before any unit runs — so the hints every unit sees are a
/// deterministic function of (grid, store contents at start), independent of
/// chunk assignment, thread/worker count or completion order; and on an
/// identical re-run or kill-resume every stored point belongs to the current
/// grid, so no unit sees any hint at all. Seeds are only collected when
/// `warm_start` is on, and only from solved (non-skipped) points with a
/// non-empty warm state; they are ordered tightest-budget-first with the
/// fingerprint as the final tie-break.
///
/// Lookups go through the [`ResultStore`] trait in two batched calls — one
/// [`get_many`](ResultStore::get_many) over every point fingerprint and (when
/// warm starts are on) one [`snapshot`](ResultStore::snapshot) for the seed
/// universe — so a remote store pays two round trips per plan, not one per
/// point.
///
/// # Errors
///
/// Returns [`ExploreError::Store`] if a grid point cannot be canonically
/// encoded or the store transport fails.
pub fn plan_store(
    grid: &SweepGrid,
    units: &[WorkUnit],
    warm_start: bool,
    store: &mut dyn ResultStore,
) -> Result<StorePlan, ExploreError> {
    // Fingerprint every point of every unit first: the exclusion set must
    // cover the whole grid before any seed is selected.
    let mut series_fps: HashMap<usize, Fingerprint> = HashMap::new();
    let mut keyed: Vec<(Fingerprint, Vec<Fingerprint>, Vec<ResourceBudget>)> =
        Vec::with_capacity(units.len());
    let mut grid_fps: HashSet<Fingerprint> = HashSet::new();
    for unit in units {
        let series_fp = match series_fps.get(&unit.series) {
            Some(fp) => *fp,
            None => {
                let fp = series_fingerprint(grid, unit.series, warm_start)?;
                series_fps.insert(unit.series, fp);
                fp
            }
        };
        let mut point_fps = Vec::with_capacity(unit.end - unit.start);
        let mut budgets = Vec::with_capacity(unit.end - unit.start);
        for budget_idx in unit.start..unit.end {
            let fp = point_fingerprint(grid, unit.series, budget_idx, warm_start)?;
            let (_, budget) = problem_doc(grid, unit.series, budget_idx)?;
            grid_fps.insert(fp);
            point_fps.push(fp);
            budgets.push(budget);
        }
        keyed.push((series_fp, point_fps, budgets));
    }

    // Seeds per series: stored, solved, warm-carrying neighbours outside the
    // current grid, in a canonical order.
    let mut seeds_by_series: HashMap<Fingerprint, Vec<(Fingerprint, ResourceBudget, WarmStart)>> =
        HashMap::new();
    if warm_start {
        for (fp, entry) in store.snapshot()? {
            if grid_fps.contains(&fp) || entry.point.is_none() || entry.warm.is_empty() {
                continue;
            }
            seeds_by_series
                .entry(entry.series)
                .or_default()
                .push((fp, entry.budget, entry.warm));
        }
        for seeds in seeds_by_series.values_mut() {
            seeds.sort_by(|(fp_a, a, _), (fp_b, b, _)| {
                let ka = budget_sort_key(a);
                let kb = budget_sort_key(b);
                ka.iter()
                    .zip(&kb)
                    .map(|(x, y)| x.total_cmp(y))
                    .find(|o| o.is_ne())
                    .unwrap_or_else(|| fp_a.cmp(fp_b))
            });
        }
    }

    // One batched lookup over every point of every unit.
    let all_fps: Vec<Fingerprint> = keyed
        .iter()
        .flat_map(|(_, point_fps, _)| point_fps.iter().copied())
        .collect();
    let mut looked_up = store.get_many(&all_fps)?.into_iter();

    let plans = keyed
        .into_iter()
        .map(|(series_fp, point_fps, budgets)| {
            let stored: Vec<Option<StoreEntry>> = point_fps
                .iter()
                .map(|_| looked_up.next().flatten())
                .collect();
            let cached = if stored.iter().all(Option::is_some) {
                Some(
                    stored
                        .iter()
                        .map(|entry| entry.as_ref().expect("all present").point)
                        .collect(),
                )
            } else {
                None
            };
            let seeds = if cached.is_some() {
                Vec::new()
            } else {
                seeds_by_series
                    .get(&series_fp)
                    .map(|s| {
                        s.iter()
                            .map(|(_, budget, warm)| (*budget, warm.clone()))
                            .collect()
                    })
                    .unwrap_or_default()
            };
            UnitPlan {
                series_fp,
                point_fps,
                budgets,
                cached,
                seeds,
            }
        })
        .collect();
    Ok(StorePlan { units: plans })
}

fn budget_sort_key(b: &ResourceBudget) -> [f64; 5] {
    let r = b.resource_fraction();
    [r.lut, r.ff, r.bram, r.dsp, b.bandwidth_fraction()]
}

/// Persists one freshly-computed unit: every point of the unit becomes one
/// store entry, and the batch commits as a single atomic segment.
///
/// # Errors
///
/// Returns [`ExploreError::Store`] on I/O or encoding failure.
pub fn commit_unit(
    store: &mut dyn ResultStore,
    plan: &UnitPlan,
    output: &UnitOutput,
) -> Result<(), ExploreError> {
    debug_assert_eq!(plan.point_fps.len(), output.points.len());
    let entries = plan
        .point_fps
        .iter()
        .zip(&plan.budgets)
        .zip(output.points.iter().zip(&output.warms))
        .map(|((fp, budget), (point, warm))| {
            (
                *fp,
                StoreEntry {
                    series: plan.series_fp,
                    budget: *budget,
                    point: *point,
                    warm: warm.clone().unwrap_or_default(),
                },
            )
        })
        .collect();
    store.put(entries)
}

/// Counters of one store-backed sweep run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreRunReport {
    /// Units replayed verbatim from the store.
    pub units_replayed: usize,
    /// Units computed fresh (and persisted).
    pub units_computed: usize,
    /// Points (including skipped ones) replayed from the store.
    pub points_replayed: usize,
    /// Points (including skipped ones) computed fresh.
    pub points_computed: usize,
    /// Fresh points whose solve accepted a warm-start hint drawn from the
    /// store's neighbour snapshot.
    pub warm_from_store: usize,
    /// Corrupt or truncated lines skipped while opening the store.
    pub corrupt_entries: usize,
    /// Entries skipped for a [`STORE_VERSION`] mismatch while opening.
    pub version_mismatches: usize,
}

impl StoreRunReport {
    /// Merges another report's counters into this one (used by surfaces that
    /// aggregate per-figure runs).
    pub fn absorb(&mut self, other: &StoreRunReport) {
        self.units_replayed += other.units_replayed;
        self.units_computed += other.units_computed;
        self.points_replayed += other.points_replayed;
        self.points_computed += other.points_computed;
        self.warm_from_store += other.warm_from_store;
        self.corrupt_entries += other.corrupt_entries;
        self.version_mismatches += other.version_mismatches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{constraint_grid, CaseSpec, SolverSpec};
    use crate::plan_units;
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mfa-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid(points: usize) -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraint_grid(0.55, 0.85, points).unwrap())
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap()
    }

    fn sample_entry(series: Fingerprint, skipped: bool) -> StoreEntry {
        StoreEntry {
            series,
            budget: ResourceBudget::uniform(0.7),
            point: if skipped {
                None
            } else {
                let grid = small_grid(2);
                let unit = WorkUnit {
                    series: 0,
                    start: 0,
                    end: 1,
                };
                let points = crate::compute_unit(&grid, &unit, true).unwrap();
                points[0]
            },
            warm: WarmStart::none()
                .with_relaxed_ii(1.5)
                .with_cu_counts(vec![1, 2, 3]),
        }
    }

    #[test]
    fn entries_round_trip_through_a_reopened_store() {
        let dir = temp_dir("roundtrip");
        let fp_a = Fingerprint::of_parts(1, &["a"]);
        let fp_b = Fingerprint::of_parts(1, &["b"]);
        let series = Fingerprint::of_parts(1, &["series"]);
        let solved = sample_entry(series, false);
        let skipped = sample_entry(series, true);
        {
            let mut store = SweepStore::open(&dir).unwrap();
            store
                .commit(vec![(fp_a, solved.clone()), (fp_b, skipped.clone())])
                .unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = SweepStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.corrupt_entries(), 0);
        assert_eq!(store.version_mismatches(), 0);
        assert_eq!(store.lookup(&fp_a), Some(&solved));
        assert_eq!(store.lookup(&fp_b), Some(&skipped));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tempfiles_and_foreign_files_are_ignored() {
        let dir = temp_dir("orphans");
        let series = Fingerprint::of_parts(1, &["series"]);
        let mut store = SweepStore::open(&dir).unwrap();
        store
            .commit(vec![(
                Fingerprint::of_parts(1, &["x"]),
                sample_entry(series, true),
            )])
            .unwrap();
        // A killed commit leaves a .tmp orphan; unrelated files may also
        // appear. Neither is indexed or counted.
        fs::write(dir.join("seg-deadbeef.tmp"), "{half a li").unwrap();
        fs::write(dir.join("README"), "not a segment").unwrap();
        let reopened = SweepStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.corrupt_entries(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_version_mismatched_lines_are_counted_misses() {
        let dir = temp_dir("corrupt");
        let series = Fingerprint::of_parts(1, &["series"]);
        let good_fp = Fingerprint::of_parts(1, &["good"]);
        {
            let mut store = SweepStore::open(&dir).unwrap();
            store
                .commit(vec![(good_fp, sample_entry(series, true))])
                .unwrap();
        }
        // Garbage, a truncated JSON line, a schema-valid line with the wrong
        // version, and a valid-JSON wrong-schema line — all in one segment.
        let future = entry_to_json(
            &Fingerprint::of_parts(1, &["future"]),
            &sample_entry(series, true),
        )
        .unwrap()
        .to_string()
        .replace("\"v\":1", "\"v\":999");
        let bad = format!(
            "not json at all\n{{\"v\":1,\"fp\":\"tr\n{future}\n{{\"v\":1,\"unexpected\":true}}\n"
        );
        fs::write(dir.join("seg-damaged.jsonl"), bad).unwrap();
        let store = SweepStore::open(&dir).unwrap();
        // The good entry survives, every damaged line is a counted miss.
        assert_eq!(store.len(), 1);
        assert!(store.lookup(&good_fp).is_some());
        assert_eq!(store.corrupt_entries(), 3);
        assert_eq!(store.version_mismatches(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_inventory_matches_what_a_fresh_open_observes() {
        let dir = temp_dir("stats");
        let series = Fingerprint::of_parts(1, &["series"]);
        let fp_a = Fingerprint::of_parts(1, &["a"]);
        let fp_b = Fingerprint::of_parts(1, &["b"]);
        {
            let mut store = SweepStore::open(&dir).unwrap();
            // Two overlapping segments: fp_a is stated twice on disk.
            store
                .commit(vec![
                    (fp_a, sample_entry(series, true)),
                    (fp_b, sample_entry(series, true)),
                ])
                .unwrap();
            store
                .commit(vec![(fp_a, sample_entry(series, true))])
                .unwrap();
        }
        // A killed commit's orphan and one damaged segment (garbage line plus
        // a version-mismatched line) complete the inventory.
        fs::write(dir.join("seg-orphan.tmp"), "{half").unwrap();
        let future = entry_to_json(
            &Fingerprint::of_parts(1, &["f"]),
            &sample_entry(series, true),
        )
        .unwrap()
        .to_string()
        .replace("\"v\":1", "\"v\":999");
        fs::write(
            dir.join("seg-damaged.jsonl"),
            format!("garbage\n{future}\n"),
        )
        .unwrap();

        let store = SweepStore::open(&dir).unwrap();
        assert_eq!(
            store.stats(),
            StoreStats {
                entries: 2,
                segments: 3,
                orphan_tmp: 1,
                duplicate_entries: 1,
                corrupt_entries: 1,
                version_mismatches: 1,
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_folds_the_store_to_one_clean_segment() {
        let dir = temp_dir("gc");
        let series = Fingerprint::of_parts(1, &["series"]);
        let fp_a = Fingerprint::of_parts(1, &["a"]);
        let fp_b = Fingerprint::of_parts(1, &["b"]);
        {
            let mut store = SweepStore::open(&dir).unwrap();
            store
                .commit(vec![
                    (fp_a, sample_entry(series, false)),
                    (fp_b, sample_entry(series, true)),
                ])
                .unwrap();
            store
                .commit(vec![(fp_a, sample_entry(series, false))])
                .unwrap();
        }
        fs::write(dir.join("seg-orphan.tmp"), "{half").unwrap();
        fs::write(dir.join("seg-damaged.jsonl"), "garbage\n").unwrap();

        let mut store = SweepStore::open(&dir).unwrap();
        let before = store.stats();
        let report = store.gc().unwrap();
        // The canonical folded segment is content-addressed, and here its
        // sorted content coincides with the first commit's segment — that
        // file is kept in place, so only the restatement and the damaged
        // segment fold away.
        assert_eq!(
            report,
            GcReport {
                segments_folded: 2,
                orphans_removed: 1,
                entries_kept: 2,
                duplicates_folded: before.duplicate_entries,
                lines_dropped: 1,
            }
        );
        // The in-place counters now match a fresh open of the compacted
        // directory: one canonical segment, no damage, same entries.
        assert_eq!(
            store.stats(),
            StoreStats {
                entries: 2,
                segments: 1,
                ..StoreStats::default()
            }
        );
        let reopened = SweepStore::open(&dir).unwrap();
        assert_eq!(reopened.stats(), store.stats());
        assert_eq!(reopened.lookup(&fp_a), store.lookup(&fp_a));
        assert_eq!(reopened.lookup(&fp_b), store.lookup(&fp_b));

        // gc is idempotent: a second pass folds nothing and keeps the same
        // canonical segment in place.
        let second = store.gc().unwrap();
        assert_eq!(
            second,
            GcReport {
                entries_kept: 2,
                ..GcReport::default()
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn point_fingerprints_are_chunking_invariant_and_config_sensitive() {
        let grid = small_grid(4);
        // Fingerprints address (series, budget index) — the chunk size used
        // to plan units never enters.
        let fine = plan_units(&grid, 1).unwrap();
        let coarse = plan_units(&grid, 4).unwrap();
        let fp_of = |units: &[WorkUnit]| -> Vec<Fingerprint> {
            units
                .iter()
                .flat_map(|u| {
                    (u.start..u.end)
                        .map(|b| point_fingerprint(&grid, u.series, b, true).unwrap())
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        assert_eq!(fp_of(&fine), fp_of(&coarse));

        // Sensitive to the warm-start mode and to the solver options.
        assert_ne!(
            point_fingerprint(&grid, 0, 0, true).unwrap(),
            point_fingerprint(&grid, 0, 0, false).unwrap()
        );
        let paper = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraint_grid(0.55, 0.85, 4).unwrap())
            .backend(SolverSpec::gpa(GpaOptions::paper_defaults()))
            .build()
            .unwrap();
        assert_ne!(
            point_fingerprint(&grid, 0, 0, true).unwrap(),
            point_fingerprint(&paper, 0, 0, true).unwrap()
        );
        // Insensitive to the display label.
        let relabeled = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraint_grid(0.55, 0.85, 4).unwrap())
            .backend(SolverSpec::gpa_labeled("renamed", GpaOptions::fast()))
            .build()
            .unwrap();
        assert_eq!(
            point_fingerprint(&grid, 0, 0, true).unwrap(),
            point_fingerprint(&relabeled, 0, 0, true).unwrap()
        );
        // Series fingerprints ignore the budget, point fingerprints do not.
        assert_ne!(
            point_fingerprint(&grid, 0, 0, true).unwrap(),
            point_fingerprint(&grid, 0, 1, true).unwrap()
        );
        assert_eq!(
            series_fingerprint(&grid, 0, true).unwrap(),
            series_fingerprint(&grid, 0, true).unwrap()
        );
    }

    #[test]
    fn planning_excludes_current_grid_points_from_seeds() {
        let dir = temp_dir("plan-seeds");
        let grid = small_grid(3);
        let units = plan_units(&grid, 8).unwrap();
        let mut store = SweepStore::open(&dir).unwrap();

        // Empty store: nothing cached, nothing seeded.
        let cold = plan_store(&grid, &units, true, &mut store).unwrap();
        assert_eq!(cold.units_replayed(), 0);
        assert!(cold.units[0].seeds.is_empty());

        // Populate the store with this very grid.
        let out = crate::executor::compute_unit_hinted(&grid, &units[0], true, 256, &[]).unwrap();
        commit_unit(&mut store, &cold.units[0], &out).unwrap();

        // Re-planning the same grid: the unit replays, and — crucially — its
        // own points never become seeds.
        let replay = plan_store(&grid, &units, true, &mut store).unwrap();
        assert_eq!(replay.units_replayed(), 1);
        assert_eq!(replay.units[0].cached.as_ref().unwrap().len(), 3);
        assert!(replay.units[0].seeds.is_empty());

        // A *shifted* grid of the same series sees the stored points as
        // neighbour seeds, tightest budget first.
        let shifted = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.60, 0.80])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let shifted_units = plan_units(&shifted, 8).unwrap();
        let plan = plan_store(&shifted, &shifted_units, true, &mut store).unwrap();
        assert_eq!(plan.units_replayed(), 0);
        let seeds = &plan.units[0].seeds;
        assert!(
            !seeds.is_empty(),
            "stored neighbours must seed the shifted grid"
        );
        for pair in seeds.windows(2) {
            assert!(
                budget_sort_key(&pair[0].0)
                    .iter()
                    .zip(budget_sort_key(&pair[1].0).iter())
                    .map(|(a, b)| a.total_cmp(b))
                    .find(|o| o.is_ne())
                    .map(|o| o.is_le())
                    .unwrap_or(true),
                "seeds must be sorted tightest-budget-first"
            );
        }
        // With warm starts off no seeds flow at all.
        let cold_plan = plan_store(&shifted, &shifted_units, false, &mut store).unwrap();
        assert!(cold_plan.units[0].seeds.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
