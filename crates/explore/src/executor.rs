//! The multi-threaded sweep executor.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use serde::{Deserialize, Serialize};

use mfa_alloc::explore::SweepPoint;
use mfa_alloc::solver::{Deadline, SolveRequest, WarmStart};

use crate::cache::WarmStartCache;
use crate::grid::{SolverSpec, SweepGrid};
use crate::ExploreError;

/// Options of the sweep executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorOptions {
    /// Worker threads. `None` uses [`std::thread::available_parallelism`];
    /// `Some(1)` forces the serial path (no threads are spawned).
    pub num_threads: Option<usize>,
    /// Constraint points per work unit. Chunks are carved from each series
    /// along the constraint axis, so the decomposition — and therefore the
    /// warm-start state every point sees — depends only on the grid and this
    /// value, never on the thread count. Smaller chunks expose more
    /// parallelism; larger chunks let the warm-start cache carry further.
    pub chunk_size: usize,
    /// Warm-start GP+A solves from the nearest already-solved point of the
    /// same chunk (see [`WarmStartCache`]). Warm starts reach the same
    /// initiation interval as cold solves, faster; when several integer
    /// designs tie on II, the warm-started search may return the
    /// neighbour's design where a cold solve would find another
    /// equally-optimal one. Disable for bit-identical agreement with the
    /// cold serial sweeps in [`mfa_alloc::explore`].
    pub warm_start: bool,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            num_threads: None,
            chunk_size: 8,
            warm_start: true,
        }
    }
}

impl ExecutorOptions {
    /// Forces the single-threaded path (useful as a reference in tests).
    pub fn serial() -> Self {
        ExecutorOptions {
            num_threads: Some(1),
            ..ExecutorOptions::default()
        }
    }
}

/// One series of a completed sweep: a (case, platform point, backend)
/// combination and its points in budget-axis order. Points whose budget is
/// infeasible or unplaceable are absent, exactly as in
/// [`mfa_alloc::explore::sweep_gpa`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Label of the swept case.
    pub case: String,
    /// Label of the series' platform point (`"N FPGAs"` for the classic
    /// FPGA-count axis, the platform label for explicit — e.g.
    /// heterogeneous — platform points).
    pub platform: String,
    /// Total FPGA count of this series.
    pub num_fpgas: usize,
    /// Label of the solver backend.
    pub backend: String,
    /// Solved points, ordered along the grid's budget axis.
    pub points: Vec<SweepPoint>,
}

/// A contiguous run of budget points of one series — the unit of work the
/// executor (and the multi-process dispatcher in `mfa_dispatch`) schedules.
///
/// The decomposition of a grid into work units depends only on the grid and
/// the chunk size (see [`plan_units`]), never on thread or worker counts, and
/// each unit is solved with its own fresh [`WarmStartCache`]; a unit's result
/// is therefore a pure function of `(grid, unit, warm_start)`, which is what
/// makes distributing units across processes semantics-preserving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Series index in grid order (see [`SweepGrid::num_series`]).
    pub series: usize,
    /// First budget-axis index of the run (inclusive).
    pub start: usize,
    /// One past the last budget-axis index of the run (exclusive).
    pub end: usize,
}

/// Decomposes a grid into [`WorkUnit`]s: each series is carved into runs of
/// at most `chunk_size` consecutive budget points, series-major. The result
/// depends only on the grid shape and `chunk_size`, so every executor —
/// serial, threaded, or multi-process — schedules the identical unit list.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidOptions`] when `chunk_size` is zero.
pub fn plan_units(grid: &SweepGrid, chunk_size: usize) -> Result<Vec<WorkUnit>, ExploreError> {
    if chunk_size == 0 {
        return Err(ExploreError::InvalidOptions(
            "chunk_size must be at least 1, got 0".into(),
        ));
    }
    let num_points = grid.budgets.len();
    let mut units = Vec::new();
    for series in 0..grid.num_series() {
        let mut start = 0;
        while start < num_points {
            let end = (start + chunk_size).min(num_points);
            units.push(WorkUnit { series, start, end });
            start = end;
        }
    }
    Ok(units)
}

/// Assembles completed unit results into one [`SweepSeries`] per series, in
/// grid order. `results[i]` must be the output of [`compute_unit`] for
/// `units[i]`; because units are indexed, the assembly is independent of the
/// order units were *completed* in — the property the multi-process
/// dispatcher relies on to stay byte-identical under arbitrary completion
/// orders.
///
/// # Panics
///
/// Panics if `units` and `results` disagree in length or a unit's series
/// index is out of range for the grid.
pub fn assemble_series(
    grid: &SweepGrid,
    units: &[WorkUnit],
    results: Vec<Vec<Option<SweepPoint>>>,
) -> Vec<SweepSeries> {
    assert_eq!(
        units.len(),
        results.len(),
        "every work unit needs exactly one result"
    );
    let mut series: Vec<SweepSeries> = (0..grid.num_series())
        .map(|s| {
            let (case, platform, backend) = grid.series_key(s);
            SweepSeries {
                case: grid.cases[case].label().to_owned(),
                platform: grid.platforms[platform].label(),
                num_fpgas: grid.platforms[platform].num_fpgas(),
                backend: grid.backends[backend].label().to_owned(),
                points: Vec::new(),
            }
        })
        .collect();
    for (unit, points) in units.iter().zip(results) {
        series[unit.series]
            .points
            .extend(points.into_iter().flatten());
    }
    series
}

/// Sets every point's wall-clock `solve_seconds` to zero. Timing is the only
/// legitimate difference between two runs of the same grid; normalizing it
/// makes series (and their [`crate::export`] output) byte-comparable, which
/// the golden-file regression tests and the sharded-dispatch determinism
/// checks rely on.
pub fn zero_timing(series: &mut [SweepSeries]) {
    for s in series {
        for p in &mut s.points {
            p.solve_seconds = 0.0;
        }
    }
}

/// Resets the diagnostics that legitimately depend on the chunk
/// decomposition: warm-start provenance (which hints a point received is a
/// fact about its chunk), branch-and-bound node counts (seeded searches
/// prune differently), the effort counters (barrier iterations, KKT
/// factorizations and simplex pivots all shrink when a chunk's cache warms
/// the solve), and the relaxation gap (a warm-started bisection converges to
/// the same optimum from a narrower bracket, differing in the last few
/// ulps). Apply it — together with [`zero_timing`] — before comparing runs
/// that used *different* chunk sizes; runs with the same decomposition are
/// byte-identical without it.
pub fn zero_chunk_diagnostics(series: &mut [SweepSeries]) {
    for s in series {
        for p in &mut s.points {
            p.relaxation_gap = 0.0;
            p.bb_nodes = 0;
            p.barrier_iterations = 0;
            p.factorizations = 0;
            p.simplex_pivots = 0;
            p.warm_start = mfa_alloc::solver::WarmStartReport::default();
        }
    }
}

/// Runs the grid and returns one [`SweepSeries`] per (case, FPGA count,
/// backend) combination, in grid order (case-major, then FPGA count, then
/// backend). The output is deterministic: for a fixed grid and `chunk_size`
/// it is identical whatever the thread count. With
/// [`ExecutorOptions::warm_start`] disabled it is additionally bit-identical
/// to the serial sweeps in [`mfa_alloc::explore`] modulo the wall-clock
/// timing fields; with warm starts on, ties between equally-optimal integer
/// designs may resolve differently (the achieved II is the same either way).
///
/// # Errors
///
/// Returns [`ExploreError::InvalidOptions`] when
/// [`ExecutorOptions::chunk_size`] is zero, and [`ExploreError::Solver`] for
/// the earliest (in grid order) non-skippable solver failure; skippable
/// point errors only omit the point. On a failure the executor stops picking
/// up new work units, so the error surfaces without sweeping the rest of the
/// grid.
pub fn run_sweep(
    grid: &SweepGrid,
    options: &ExecutorOptions,
) -> Result<Vec<SweepSeries>, ExploreError> {
    let units = plan_units(grid, options.chunk_size)?;

    let threads = options
        .num_threads
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, units.len().max(1));

    // The abort flag stops workers from *starting* new units after a
    // failure; units already underway run to completion. Because workers
    // take units in index order, every unit below the failing index has
    // been started and therefore finishes, which keeps the surfaced error
    // (the lowest-index one) independent of scheduling.
    let abort = AtomicBool::new(false);
    let mut unit_results: Vec<Option<UnitResult>> = units.iter().map(|_| None).collect();
    if threads <= 1 {
        for (idx, unit) in units.iter().enumerate() {
            let result = compute_unit(grid, unit, options.warm_start);
            let failed = result.is_err();
            unit_results[idx] = Some(result);
            if failed {
                break;
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, UnitResult)>();
        thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let units = &units;
                let next = &next;
                let abort = &abort;
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(idx) else {
                        break;
                    };
                    let result = compute_unit(grid, unit, options.warm_start);
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        for (idx, result) in rx {
            unit_results[idx] = Some(result);
        }
    }

    // Surface the lowest-index failure first, so which error wins when
    // several units fail is independent of scheduling.
    for slot in unit_results.iter_mut() {
        if matches!(slot, Some(Err(_))) {
            let Some(Err(err)) = slot.take() else {
                unreachable!("just matched an error")
            };
            return Err(err);
        }
    }

    // No failures: every unit up to the end was computed. Assemble in unit
    // order so each series' points follow the constraint axis.
    let results = unit_results
        .into_iter()
        .map(|slot| {
            slot.expect("without failures every work unit produces a result")
                .expect("failures were surfaced above")
        })
        .collect();
    Ok(assemble_series(grid, &units, results))
}

type UnitResult = Result<Vec<Option<SweepPoint>>, ExploreError>;

/// Solves one [`WorkUnit`]: the unit's budget points in axis order, each
/// GP+A solve warm-started from the nearest (in budget distance)
/// already-solved point of the same unit. `None` entries are skippable
/// points (infeasible or unplaceable budgets), exactly as in
/// [`mfa_alloc::explore::sweep_gpa`].
///
/// The result is a pure function of the arguments — the warm-start cache is
/// created fresh per unit — so a unit computes identically whether it runs
/// on a thread of [`run_sweep`] or in a remote worker process.
///
/// # Errors
///
/// Returns [`ExploreError::Solver`] for the unit's first non-skippable
/// solver failure.
pub fn compute_unit(
    grid: &SweepGrid,
    unit: &WorkUnit,
    warm_start: bool,
) -> Result<Vec<Option<SweepPoint>>, ExploreError> {
    let (case_idx, platform_idx, backend_idx) = grid.series_key(unit.series);
    let case = &grid.cases[case_idx];
    let platform = &grid.platforms[platform_idx];
    let backend = &grid.backends[backend_idx];
    let fail = |constraint: f64, source: mfa_alloc::AllocError| ExploreError::Solver {
        case: case.label().to_owned(),
        num_fpgas: platform.num_fpgas(),
        backend: backend.label().to_owned(),
        resource_constraint: constraint,
        source,
    };

    let mut points = Vec::with_capacity(unit.end - unit.start);
    let mut cache = WarmStartCache::new();
    for budget_spec in &grid.budgets[unit.start..unit.end] {
        let instance = case.problem_at(platform, budget_spec);
        let constraint = budget_spec.scalar();
        let budget = *instance.budget();
        // GP+A points feed on (and feed) the unit's warm-start cache; exact
        // points always run cold so a node-capped MINLP incumbent never
        // depends on the chunk decomposition.
        let caching = matches!(backend, SolverSpec::Gpa { .. });
        let hint = if warm_start && caching {
            cache.nearest(&budget).cloned().unwrap_or_default()
        } else {
            WarmStart::none()
        };
        let mut request = SolveRequest::new(&instance)
            .backend(backend.to_backend())
            .warm_start(hint)
            .skip_policy(grid.skip_policy);
        if let Some(seconds) = grid.point_deadline_seconds {
            request = request.deadline(Deadline::within(std::time::Duration::from_secs_f64(
                seconds,
            )));
        }
        match request.solve_point() {
            Ok(Some(report)) => {
                if caching {
                    cache.insert(&budget, report.warm_start());
                }
                points.push(Some(SweepPoint::from_report(
                    &instance, constraint, &report,
                )));
            }
            Ok(None) => points.push(None),
            Err(err) => return Err(fail(constraint, err)),
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{constraint_grid, CaseSpec};
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;

    fn alex16_grid(points: usize, backends: Vec<SolverSpec>) -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraint_grid(0.55, 0.85, points).unwrap())
            .backends(backends)
            .build()
            .unwrap()
    }

    /// Wall-clock fields are the only legitimate difference between two runs
    /// of the same grid.
    fn zeroed(mut series: Vec<SweepSeries>) -> Vec<SweepSeries> {
        zero_timing(&mut series);
        series
    }

    #[test]
    fn parallel_and_serial_sweeps_are_identical() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        // Same chunk decomposition, different thread counts: byte-identical
        // including every diagnostic column.
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &grid,
            &ExecutorOptions {
                num_threads: Some(4),
                chunk_size: 2,
                warm_start: true,
            },
        )
        .unwrap();
        assert_eq!(zeroed(serial), zeroed(parallel));
        // Across different decompositions the solution columns still agree;
        // only the chunk-dependent diagnostics may differ.
        let chunk8 = run_sweep(&grid, &ExecutorOptions::serial()).unwrap();
        let chunk2 = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let strip = |mut series: Vec<SweepSeries>| {
            zero_timing(&mut series);
            zero_chunk_diagnostics(&mut series);
            series
        };
        assert_eq!(strip(chunk8), strip(chunk2));
    }

    #[test]
    fn chunked_warm_starts_match_cold_solves() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let warm = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 6,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let cold = run_sweep(
            &grid,
            &ExecutorOptions {
                warm_start: false,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        assert_eq!(warm[0].points.len(), cold[0].points.len());
        for (w, c) in warm[0].points.iter().zip(&cold[0].points) {
            assert!(
                (w.initiation_interval_ms - c.initiation_interval_ms).abs()
                    < 1e-9 * c.initiation_interval_ms.max(1.0),
                "warm {} vs cold {}",
                w.initiation_interval_ms,
                c.initiation_interval_ms
            );
        }
    }

    #[test]
    fn engine_matches_the_single_threaded_core_sweep() {
        let constraints = constraint_grid(0.55, 0.85, 5).unwrap();
        let options = GpaOptions::fast();
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraints.clone())
            .backend(SolverSpec::gpa(options.clone()))
            .build()
            .unwrap();
        // Warm starts off: on II ties the warm-started search may return a
        // different equally-optimal design, so only the cold path is
        // guaranteed bit-identical to the core sweep.
        let engine = run_sweep(
            &grid,
            &ExecutorOptions {
                warm_start: false,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let core = mfa_alloc::explore::sweep_gpa(&problem, &constraints, &options).unwrap();
        assert_eq!(engine[0].points.len(), core.len());
        for (e, c) in engine[0].points.iter().zip(&core) {
            assert_eq!(e.resource_constraint, c.resource_constraint);
            assert!(
                (e.initiation_interval_ms - c.initiation_interval_ms).abs()
                    < 1e-9 * c.initiation_interval_ms.max(1.0)
            );
            assert_eq!(e.average_utilization, c.average_utilization);
            assert_eq!(e.spreading, c.spreading);
        }
    }

    #[test]
    fn infeasible_points_are_absent_not_fatal() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([4])
            // 30 % cannot host CONV2 (37.6 % DSP per CU); 75 % can.
            .constraints([0.30, 0.75])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let series = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
        assert_eq!(series[0].points.len(), 1);
        assert!((series[0].points[0].resource_constraint - 0.75).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_platform_and_budget_axes_run_deterministically() {
        use mfa_platform::{
            DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec,
        };
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .platform(crate::PlatformSpec::platform(fleet))
            .constraints([0.65, 0.80])
            .budget(ResourceBudget::new(
                ResourceVec::new(0.9, 0.9, 0.6, 0.75),
                0.9,
            ))
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &grid,
            &ExecutorOptions {
                num_threads: Some(4),
                chunk_size: 2,
                warm_start: true,
            },
        )
        .unwrap();
        assert_eq!(zeroed(serial.clone()), zeroed(parallel));
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].platform, "2 FPGAs");
        assert_eq!(serial[1].platform, "1×VU9P + 1×KU115");
        assert_eq!(serial[1].num_fpgas, 2);
        // All three budget points solve on both platforms.
        for s in &serial {
            assert_eq!(s.points.len(), 3, "{}: {:?}", s.platform, s.points);
            // The per-resource point records its full budget.
            let skewed = &s.points[2];
            assert!((skewed.budget.resource_fraction().bram - 0.6).abs() < 1e-12);
            assert!((skewed.budget.bandwidth_fraction() - 0.9).abs() < 1e-12);
            assert!((skewed.resource_constraint - 0.9).abs() < 1e-12);
        }
        // The uniform points inherit the case's full bandwidth.
        assert!((serial[0].points[0].budget.bandwidth_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skip_policy_and_deadline_riders_reach_every_point_request() {
        use mfa_alloc::solver::SkipPolicy;
        use mfa_alloc::AllocError;
        // Every point carries an already-exhausted deadline. Lenient (the
        // default): all points are skipped and the sweep succeeds empty.
        let lenient = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.80])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .point_deadline_seconds(0.0)
            .build()
            .unwrap();
        let series = run_sweep(&lenient, &ExecutorOptions::serial()).unwrap();
        assert!(series[0].points.is_empty());
        // Strict: the same exhausted deadline aborts the sweep with the
        // structured error — the opt-in for exact sweeps that must account
        // for every point.
        let strict = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.80])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .point_deadline_seconds(0.0)
            .skip_policy(SkipPolicy::Strict)
            .build()
            .unwrap();
        assert_eq!(strict.skip_policy(), SkipPolicy::Strict);
        let err = run_sweep(&strict, &ExecutorOptions::serial()).unwrap_err();
        assert!(
            matches!(
                &err,
                ExploreError::Solver {
                    source: AllocError::DeadlineExceeded { .. },
                    ..
                }
            ),
            "expected a DeadlineExceeded sweep abort, got {err}"
        );
        // Strict mode still skips genuine infeasibility: a budget too tight
        // for Alex-32's CONV2 is "no data", not an engine failure.
        let strict_infeasible = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([4])
            .constraints([0.30, 0.75])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .skip_policy(SkipPolicy::Strict)
            .build()
            .unwrap();
        let series = run_sweep(&strict_infeasible, &ExecutorOptions::serial()).unwrap();
        assert_eq!(series[0].points.len(), 1);
    }

    #[test]
    fn zero_chunk_size_errors_instead_of_hanging() {
        let grid = alex16_grid(4, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let result = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 0,
                ..ExecutorOptions::serial()
            },
        );
        assert!(matches!(result, Err(ExploreError::InvalidOptions(_))));
        assert!(matches!(
            plan_units(&grid, 0),
            Err(ExploreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn planned_units_tile_every_series_in_order() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([1, 2])
            .constraints([0.6, 0.65, 0.7, 0.75, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let units = plan_units(&grid, 2).unwrap();
        assert_eq!(
            units,
            vec![
                WorkUnit {
                    series: 0,
                    start: 0,
                    end: 2
                },
                WorkUnit {
                    series: 0,
                    start: 2,
                    end: 4
                },
                WorkUnit {
                    series: 0,
                    start: 4,
                    end: 5
                },
                WorkUnit {
                    series: 1,
                    start: 0,
                    end: 2
                },
                WorkUnit {
                    series: 1,
                    start: 2,
                    end: 4
                },
                WorkUnit {
                    series: 1,
                    start: 4,
                    end: 5
                },
            ]
        );
        // A chunk size at least as large as the budget axis yields one unit
        // per series.
        assert_eq!(plan_units(&grid, 64).unwrap().len(), grid.num_series());
    }

    #[test]
    fn assembly_is_independent_of_completion_order() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let units = plan_units(&grid, 2).unwrap();
        let in_order: Vec<_> = units
            .iter()
            .map(|u| compute_unit(&grid, u, true).unwrap())
            .collect();
        // Compute the same units back to front — the stand-in for an
        // adversarial scheduler — and slot results by index.
        let mut reversed: Vec<Option<Vec<Option<SweepPoint>>>> = vec![None; units.len()];
        for (idx, unit) in units.iter().enumerate().rev() {
            reversed[idx] = Some(compute_unit(&grid, unit, true).unwrap());
        }
        let reversed: Vec<_> = reversed.into_iter().map(Option::unwrap).collect();
        let mut a = assemble_series(&grid, &units, in_order);
        let mut b = assemble_series(&grid, &units, reversed);
        zero_timing(&mut a);
        zero_timing(&mut b);
        assert_eq!(a, b);
        let mut serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        zero_timing(&mut serial);
        assert_eq!(a, serial);
    }

    #[test]
    fn series_cover_the_full_axis_product() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([1, 2])
            .constraints([0.7, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::gpa_labeled(
                "GP+A/gp",
                GpaOptions::paper_defaults(),
            ))
            .build()
            .unwrap();
        let series = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].num_fpgas, 1);
        assert_eq!(series[0].backend, "GP+A");
        assert_eq!(series[1].backend, "GP+A/gp");
        assert_eq!(series[2].num_fpgas, 2);
        for s in &series {
            assert_eq!(s.case, "Alex-16 on 2 FPGAs");
            assert!(!s.points.is_empty());
        }
    }
}
