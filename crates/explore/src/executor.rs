//! The multi-threaded sweep executor.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use serde::{Deserialize, Serialize};

use mfa_alloc::explore::SweepPoint;
use mfa_alloc::solver::{Deadline, SolveRequest, WarmStart};

use crate::cache::{WarmStartCache, DEFAULT_CACHE_CAPACITY};
use crate::grid::{SolverSpec, SweepGrid};
use crate::store::{self, ResultStore, StorePlan, StoreRunReport};
use crate::ExploreError;

/// Options of the sweep executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorOptions {
    /// Worker threads. `None` uses [`std::thread::available_parallelism`];
    /// `Some(1)` forces the serial path (no threads are spawned).
    pub num_threads: Option<usize>,
    /// Constraint points per work unit. Chunks are carved from each series
    /// along the constraint axis, so the decomposition — and therefore the
    /// warm-start state every point sees — depends only on the grid and this
    /// value, never on the thread count. Smaller chunks expose more
    /// parallelism; larger chunks let the warm-start cache carry further.
    pub chunk_size: usize,
    /// Warm-start GP+A solves from the nearest already-solved point of the
    /// same chunk (see [`WarmStartCache`]). Warm starts reach the same
    /// initiation interval as cold solves, faster; when several integer
    /// designs tie on II, the warm-started search may return the
    /// neighbour's design where a cold solve would find another
    /// equally-optimal one. Disable for bit-identical agreement with the
    /// cold serial sweeps in [`mfa_alloc::explore`].
    pub warm_start: bool,
    /// Entry bound of each unit's [`WarmStartCache`]. Eviction is FIFO and
    /// depends only on the insertion sequence, so any bound preserves the
    /// serial/parallel byte-identity contract; the default
    /// ([`DEFAULT_CACHE_CAPACITY`]) exceeds every realistic chunk size and
    /// never evicts in practice.
    pub cache_capacity: usize,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        ExecutorOptions {
            num_threads: None,
            chunk_size: 8,
            warm_start: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

impl ExecutorOptions {
    /// Forces the single-threaded path (useful as a reference in tests).
    pub fn serial() -> Self {
        ExecutorOptions {
            num_threads: Some(1),
            ..ExecutorOptions::default()
        }
    }
}

/// One series of a completed sweep: a (case, platform point, backend)
/// combination and its points in budget-axis order. Points whose budget is
/// infeasible or unplaceable are absent, exactly as in
/// [`mfa_alloc::explore::sweep_gpa`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Label of the swept case.
    pub case: String,
    /// Label of the series' platform point (`"N FPGAs"` for the classic
    /// FPGA-count axis, the platform label for explicit — e.g.
    /// heterogeneous — platform points).
    pub platform: String,
    /// Total FPGA count of this series.
    pub num_fpgas: usize,
    /// Label of the solver backend.
    pub backend: String,
    /// Solved points, ordered along the grid's budget axis.
    pub points: Vec<SweepPoint>,
}

/// A contiguous run of budget points of one series — the unit of work the
/// executor (and the multi-process dispatcher in `mfa_dispatch`) schedules.
///
/// The decomposition of a grid into work units depends only on the grid and
/// the chunk size (see [`plan_units`]), never on thread or worker counts, and
/// each unit is solved with its own fresh [`WarmStartCache`]; a unit's result
/// is therefore a pure function of `(grid, unit, warm_start)`, which is what
/// makes distributing units across processes semantics-preserving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Series index in grid order (see [`SweepGrid::num_series`]).
    pub series: usize,
    /// First budget-axis index of the run (inclusive).
    pub start: usize,
    /// One past the last budget-axis index of the run (exclusive).
    pub end: usize,
}

/// Decomposes a grid into [`WorkUnit`]s: each series is carved into runs of
/// at most `chunk_size` consecutive budget points, series-major. The result
/// depends only on the grid shape and `chunk_size`, so every executor —
/// serial, threaded, or multi-process — schedules the identical unit list.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidOptions`] when `chunk_size` is zero.
pub fn plan_units(grid: &SweepGrid, chunk_size: usize) -> Result<Vec<WorkUnit>, ExploreError> {
    if chunk_size == 0 {
        return Err(ExploreError::InvalidOptions(
            "chunk_size must be at least 1, got 0".into(),
        ));
    }
    let num_points = grid.budgets.len();
    let mut units = Vec::new();
    for series in 0..grid.num_series() {
        let mut start = 0;
        while start < num_points {
            let end = (start + chunk_size).min(num_points);
            units.push(WorkUnit { series, start, end });
            start = end;
        }
    }
    Ok(units)
}

/// Assembles completed unit results into one [`SweepSeries`] per series, in
/// grid order. `results[i]` must be the output of [`compute_unit`] for
/// `units[i]`; because units are indexed, the assembly is independent of the
/// order units were *completed* in — the property the multi-process
/// dispatcher relies on to stay byte-identical under arbitrary completion
/// orders.
///
/// # Panics
///
/// Panics if `units` and `results` disagree in length or a unit's series
/// index is out of range for the grid.
pub fn assemble_series(
    grid: &SweepGrid,
    units: &[WorkUnit],
    results: Vec<Vec<Option<SweepPoint>>>,
) -> Vec<SweepSeries> {
    assert_eq!(
        units.len(),
        results.len(),
        "every work unit needs exactly one result"
    );
    let mut series: Vec<SweepSeries> = (0..grid.num_series())
        .map(|s| {
            let (case, platform, backend) = grid.series_key(s);
            SweepSeries {
                case: grid.cases[case].label().to_owned(),
                platform: grid.platforms[platform].label(),
                num_fpgas: grid.platforms[platform].num_fpgas(),
                backend: grid.backends[backend].label().to_owned(),
                points: Vec::new(),
            }
        })
        .collect();
    for (unit, points) in units.iter().zip(results) {
        series[unit.series]
            .points
            .extend(points.into_iter().flatten());
    }
    series
}

/// Sets every point's wall-clock `solve_seconds` to zero. Timing is the only
/// legitimate difference between two runs of the same grid; normalizing it
/// makes series (and their [`crate::export`] output) byte-comparable, which
/// the golden-file regression tests and the sharded-dispatch determinism
/// checks rely on.
pub fn zero_timing(series: &mut [SweepSeries]) {
    for s in series {
        for p in &mut s.points {
            p.solve_seconds = 0.0;
        }
    }
}

/// Resets the diagnostics that legitimately depend on the chunk
/// decomposition: warm-start provenance (which hints a point received is a
/// fact about its chunk), branch-and-bound node counts (seeded searches
/// prune differently), the effort counters (barrier iterations, KKT
/// factorizations and simplex pivots all shrink when a chunk's cache warms
/// the solve), and the relaxation gap (a warm-started bisection converges to
/// the same optimum from a narrower bracket, differing in the last few
/// ulps). Apply it — together with [`zero_timing`] — before comparing runs
/// that used *different* chunk sizes; runs with the same decomposition are
/// byte-identical without it.
pub fn zero_chunk_diagnostics(series: &mut [SweepSeries]) {
    for s in series {
        for p in &mut s.points {
            p.relaxation_gap = 0.0;
            p.bb_nodes = 0;
            p.barrier_iterations = 0;
            p.factorizations = 0;
            p.simplex_pivots = 0;
            p.warm_start = mfa_alloc::solver::WarmStartReport::default();
        }
    }
}

/// Runs the grid and returns one [`SweepSeries`] per (case, FPGA count,
/// backend) combination, in grid order (case-major, then FPGA count, then
/// backend). The output is deterministic: for a fixed grid and `chunk_size`
/// it is identical whatever the thread count. With
/// [`ExecutorOptions::warm_start`] disabled it is additionally bit-identical
/// to the serial sweeps in [`mfa_alloc::explore`] modulo the wall-clock
/// timing fields; with warm starts on, ties between equally-optimal integer
/// designs may resolve differently (the achieved II is the same either way).
///
/// # Errors
///
/// Returns [`ExploreError::InvalidOptions`] when
/// [`ExecutorOptions::chunk_size`] is zero, and [`ExploreError::Solver`] for
/// the earliest (in grid order) non-skippable solver failure; skippable
/// point errors only omit the point. On a failure the executor stops picking
/// up new work units, so the error surfaces without sweeping the rest of the
/// grid.
pub fn run_sweep(
    grid: &SweepGrid,
    options: &ExecutorOptions,
) -> Result<Vec<SweepSeries>, ExploreError> {
    run_sweep_impl(grid, options, None).map(|(series, _)| series)
}

/// Like [`run_sweep`], but backed by a persistent [`ResultStore`] — a local
/// [`SweepStore`](crate::SweepStore) directory or `mfa_storenet`'s
/// `RemoteStore` client: units
/// every point of which is already stored replay verbatim without computing
/// anything, fresh units are persisted atomically *as they complete* (so a
/// killed run resumes where it stopped), and fresh solves are warm-started
/// from stored neighbouring points of the same series — including exact
/// B&B incumbents, which in-process caching must keep cold.
///
/// Determinism: for any store state — empty, partial (a killed run), or full
/// — the returned series are byte-identical to a storeless [`run_sweep`] of
/// the same grid and options, because replayed units reproduce exactly what
/// [`compute_unit`] computed and neighbour hints only flow from stored
/// points *outside* the current grid (see [`store::plan_store`]).
///
/// # Errors
///
/// Everything [`run_sweep`] returns, plus [`ExploreError::Store`] for
/// store-level I/O failures. Solver failures surface *after* completed units
/// persist, so a failed run still resumes.
pub fn run_sweep_stored(
    grid: &SweepGrid,
    options: &ExecutorOptions,
    store: &mut dyn ResultStore,
) -> Result<(Vec<SweepSeries>, StoreRunReport), ExploreError> {
    run_sweep_impl(grid, options, Some(store))
        .map(|(series, report)| (series, report.expect("store-backed runs produce a report")))
}

fn run_sweep_impl(
    grid: &SweepGrid,
    options: &ExecutorOptions,
    mut store: Option<&mut dyn ResultStore>,
) -> Result<(Vec<SweepSeries>, Option<StoreRunReport>), ExploreError> {
    let units = plan_units(grid, options.chunk_size)?;
    let plan: Option<StorePlan> = match store.as_deref_mut() {
        Some(s) => Some(store::plan_store(grid, &units, options.warm_start, s)?),
        None => None,
    };
    let mut report = store.as_deref().map(|s| StoreRunReport {
        corrupt_entries: s.corrupt_count(),
        version_mismatches: s.version_mismatch_count(),
        ..StoreRunReport::default()
    });

    let mut unit_results: Vec<Option<UnitResult>> = units.iter().map(|_| None).collect();

    // Replay fully-stored units up front; only the remainder is scheduled.
    let mut work: Vec<usize> = Vec::with_capacity(units.len());
    match (&plan, report.as_mut()) {
        (Some(plan), Some(report)) => {
            for (idx, unit_plan) in plan.units.iter().enumerate() {
                if let Some(points) = &unit_plan.cached {
                    report.units_replayed += 1;
                    report.points_replayed += points.len();
                    unit_results[idx] = Some(Ok(points.clone()));
                } else {
                    work.push(idx);
                }
            }
        }
        _ => work.extend(0..units.len()),
    }

    let threads = options
        .num_threads
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, work.len().max(1));

    let seeds_of = |idx: usize| {
        plan.as_ref()
            .map(|p| p.units[idx].seeds.as_slice())
            .unwrap_or(&[])
    };
    let mut persist = |store: &mut Option<&mut dyn ResultStore>,
                       report: &mut Option<StoreRunReport>,
                       idx: usize,
                       out: &UnitOutput|
     -> Result<(), ExploreError> {
        let (Some(store), Some(plan), Some(report)) =
            (store.as_deref_mut(), &plan, report.as_mut())
        else {
            return Ok(());
        };
        store::commit_unit(store, &plan.units[idx], out)?;
        report.units_computed += 1;
        report.points_computed += out.points.len();
        report.warm_from_store += out.warm_from_store;
        Ok(())
    };

    if threads <= 1 {
        for &idx in &work {
            match compute_unit_hinted(
                grid,
                &units[idx],
                options.warm_start,
                options.cache_capacity,
                seeds_of(idx),
            ) {
                Ok(out) => {
                    persist(&mut store, &mut report, idx, &out)?;
                    unit_results[idx] = Some(Ok(out.points));
                }
                Err(err) => {
                    unit_results[idx] = Some(Err(err));
                    break;
                }
            }
        }
    } else {
        // The abort flag stops workers from *starting* new units after a
        // failure; units already underway run to completion. Because workers
        // take units in index order, every unit below the failing index has
        // been started and therefore finishes, which keeps the surfaced
        // error (the lowest-index one) independent of scheduling.
        let abort = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<UnitOutput, ExploreError>)>();
        let mut persist_err: Option<ExploreError> = None;
        {
            let work = &work;
            let units = &units;
            let next = &next;
            let abort = &abort;
            let seeds_of = &seeds_of;
            let store = &mut store;
            let report = &mut report;
            let persist = &mut persist;
            let unit_results = &mut unit_results;
            let persist_err = &mut persist_err;
            thread::scope(move |scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = work.get(pos) else {
                            break;
                        };
                        let result = compute_unit_hinted(
                            grid,
                            &units[idx],
                            options.warm_start,
                            options.cache_capacity,
                            seeds_of(idx),
                        );
                        if result.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        if tx.send((idx, result)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // Drain on the main thread *inside* the scope: each unit is
                // persisted the moment it completes, not after the whole
                // sweep — which is what makes a killed threaded run
                // resumable from everything it finished.
                for (idx, result) in rx {
                    match result {
                        Ok(out) => {
                            if persist_err.is_none() {
                                if let Err(err) = persist(store, report, idx, &out) {
                                    *persist_err = Some(err);
                                    abort.store(true, Ordering::Relaxed);
                                }
                            }
                            unit_results[idx] = Some(Ok(out.points));
                        }
                        Err(err) => unit_results[idx] = Some(Err(err)),
                    }
                }
            });
        }
        if let Some(err) = persist_err {
            return Err(err);
        }
    }

    // Surface the lowest-index failure first, so which error wins when
    // several units fail is independent of scheduling.
    for slot in unit_results.iter_mut() {
        if matches!(slot, Some(Err(_))) {
            let Some(Err(err)) = slot.take() else {
                unreachable!("just matched an error")
            };
            return Err(err);
        }
    }

    // No failures: every unit up to the end was computed. Assemble in unit
    // order so each series' points follow the constraint axis.
    let results = unit_results
        .into_iter()
        .map(|slot| {
            slot.expect("without failures every work unit produces a result")
                .expect("failures were surfaced above")
        })
        .collect();
    Ok((assemble_series(grid, &units, results), report))
}

type UnitResult = Result<Vec<Option<SweepPoint>>, ExploreError>;

/// Solves one [`WorkUnit`]: the unit's budget points in axis order, each
/// GP+A solve warm-started from the nearest (in budget distance)
/// already-solved point of the same unit. `None` entries are skippable
/// points (infeasible or unplaceable budgets), exactly as in
/// [`mfa_alloc::explore::sweep_gpa`].
///
/// The result is a pure function of the arguments — the warm-start cache is
/// created fresh per unit — so a unit computes identically whether it runs
/// on a thread of [`run_sweep`] or in a remote worker process.
///
/// # Errors
///
/// Returns [`ExploreError::Solver`] for the unit's first non-skippable
/// solver failure.
pub fn compute_unit(
    grid: &SweepGrid,
    unit: &WorkUnit,
    warm_start: bool,
) -> Result<Vec<Option<SweepPoint>>, ExploreError> {
    compute_unit_hinted(grid, unit, warm_start, DEFAULT_CACHE_CAPACITY, &[]).map(|out| out.points)
}

/// Everything one computed [`WorkUnit`] produces: the points themselves plus
/// the per-point warm-start states a persistent store records for future
/// neighbour seeding.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutput {
    /// Solved points in budget-axis order; `None` entries are skipped
    /// (infeasible/unplaceable) budgets.
    pub points: Vec<Option<SweepPoint>>,
    /// Warm-start state each point's solve published, parallel to `points`
    /// (`None` exactly where the point was skipped).
    pub warms: Vec<Option<WarmStart>>,
    /// Points whose solve accepted a hint drawn from the store-neighbour
    /// `seeds` rather than the in-unit cache.
    pub warm_from_store: usize,
}

/// [`compute_unit`] with explicit cache capacity and store-neighbour seeds.
///
/// `seeds` are warm-start candidates from *outside* the unit (stored
/// neighbouring points of the same series — see
/// [`store::plan_store`](crate::store::plan_store)); they are fixed before
/// the unit runs, so the result stays a pure function of `(grid, unit,
/// warm_start, cache_capacity, seeds)`. With empty seeds this is exactly
/// [`compute_unit`].
///
/// Hint selection per point:
///
/// * **GP+A points** consult the in-unit cache *and* the seeds, taking the
///   overall-nearest under [`crate::budget_distance`] (the in-unit entry
///   wins ties — it is what a storeless sweep would have used).
/// * **Exact points** consult *only* the seeds. In-process exact solves must
///   stay cold so a node-capped incumbent never depends on the chunk
///   decomposition; seeds are chunking-independent by construction, so they
///   are the one legal way to warm an exact point. The incumbent is
///   verified before use, so a seed can only prune the search — never change
///   the optimum.
///
/// # Errors
///
/// Returns [`ExploreError::Solver`] for the unit's first non-skippable
/// solver failure.
pub fn compute_unit_hinted(
    grid: &SweepGrid,
    unit: &WorkUnit,
    warm_start: bool,
    cache_capacity: usize,
    seeds: &[(mfa_platform::ResourceBudget, WarmStart)],
) -> Result<UnitOutput, ExploreError> {
    let (case_idx, platform_idx, backend_idx) = grid.series_key(unit.series);
    let case = &grid.cases[case_idx];
    let platform = &grid.platforms[platform_idx];
    let backend = &grid.backends[backend_idx];
    let fail = |constraint: f64, source: mfa_alloc::AllocError| ExploreError::Solver {
        case: case.label().to_owned(),
        num_fpgas: platform.num_fpgas(),
        backend: backend.label().to_owned(),
        resource_constraint: constraint,
        source,
    };

    // The seeds live in their own cache so in-unit entries and stored
    // neighbours stay distinguishable (the warm-from-store counter) and the
    // seed set never evicts mid-unit.
    let mut seed_cache = WarmStartCache::with_capacity(seeds.len());
    for (budget, warm) in seeds {
        seed_cache.insert(budget, warm.clone());
    }

    let mut out = UnitOutput {
        points: Vec::with_capacity(unit.end - unit.start),
        warms: Vec::with_capacity(unit.end - unit.start),
        warm_from_store: 0,
    };
    let mut cache = WarmStartCache::with_capacity(cache_capacity);
    for budget_spec in &grid.budgets[unit.start..unit.end] {
        let instance = case.problem_at(platform, budget_spec);
        let constraint = budget_spec.scalar();
        let budget = *instance.budget();
        // GP+A points feed on (and feed) the unit's warm-start cache; exact
        // points never touch it, so a node-capped MINLP incumbent never
        // depends on the chunk decomposition — only chunking-independent
        // store seeds may warm them.
        let caching = matches!(backend, SolverSpec::Gpa { .. });
        let mut from_store = false;
        let hint = if !warm_start {
            WarmStart::none()
        } else if caching {
            match (
                cache.nearest_entry(&budget),
                seed_cache.nearest_entry(&budget),
            ) {
                (Some((d_unit, unit_hint)), Some((d_seed, seed_hint))) => {
                    if d_seed < d_unit {
                        from_store = true;
                        seed_hint.clone()
                    } else {
                        unit_hint.clone()
                    }
                }
                (Some((_, unit_hint)), None) => unit_hint.clone(),
                (None, Some((_, seed_hint))) => {
                    from_store = true;
                    seed_hint.clone()
                }
                (None, None) => WarmStart::none(),
            }
        } else {
            match seed_cache.nearest(&budget) {
                Some(seed_hint) => {
                    from_store = true;
                    seed_hint.clone()
                }
                None => WarmStart::none(),
            }
        };
        let mut request = SolveRequest::new(&instance)
            .backend(backend.to_backend())
            .warm_start(hint)
            .skip_policy(grid.skip_policy);
        if let Some(seconds) = grid.point_deadline_seconds {
            // The builder validated this at grid construction, but the
            // conversion stays panic-free regardless: a malformed float
            // surfaces as a typed error, never a `from_secs_f64` panic.
            let deadline = Deadline::within_seconds(seconds)
                .map_err(|err| ExploreError::InvalidOptions(err.to_string()))?;
            request = request.deadline(deadline);
        }
        match request.solve_point() {
            Ok(Some(report)) => {
                let warm_out = report.warm_start();
                if caching {
                    cache.insert(&budget, warm_out.clone());
                }
                let used = &report.diagnostics.warm_start;
                if from_store && (used.ii_hint_used || used.dual_hint_used || used.incumbent_used) {
                    out.warm_from_store += 1;
                }
                out.points.push(Some(SweepPoint::from_report(
                    &instance, constraint, &report,
                )));
                out.warms.push(Some(warm_out));
            }
            Ok(None) => {
                out.points.push(None);
                out.warms.push(None);
            }
            Err(err) => return Err(fail(constraint, err)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{constraint_grid, CaseSpec};
    use mfa_alloc::cases::PaperCase;
    use mfa_alloc::gpa::GpaOptions;

    fn alex16_grid(points: usize, backends: Vec<SolverSpec>) -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraint_grid(0.55, 0.85, points).unwrap())
            .backends(backends)
            .build()
            .unwrap()
    }

    /// Wall-clock fields are the only legitimate difference between two runs
    /// of the same grid.
    fn zeroed(mut series: Vec<SweepSeries>) -> Vec<SweepSeries> {
        zero_timing(&mut series);
        series
    }

    #[test]
    fn parallel_and_serial_sweeps_are_identical() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        // Same chunk decomposition, different thread counts: byte-identical
        // including every diagnostic column.
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &grid,
            &ExecutorOptions {
                num_threads: Some(4),
                chunk_size: 2,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        assert_eq!(zeroed(serial), zeroed(parallel));
        // Across different decompositions the solution columns still agree;
        // only the chunk-dependent diagnostics may differ.
        let chunk8 = run_sweep(&grid, &ExecutorOptions::serial()).unwrap();
        let chunk2 = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let strip = |mut series: Vec<SweepSeries>| {
            zero_timing(&mut series);
            zero_chunk_diagnostics(&mut series);
            series
        };
        assert_eq!(strip(chunk8), strip(chunk2));
    }

    #[test]
    fn chunked_warm_starts_match_cold_solves() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let warm = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 6,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let cold = run_sweep(
            &grid,
            &ExecutorOptions {
                warm_start: false,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        assert_eq!(warm[0].points.len(), cold[0].points.len());
        for (w, c) in warm[0].points.iter().zip(&cold[0].points) {
            assert!(
                (w.initiation_interval_ms - c.initiation_interval_ms).abs()
                    < 1e-9 * c.initiation_interval_ms.max(1.0),
                "warm {} vs cold {}",
                w.initiation_interval_ms,
                c.initiation_interval_ms
            );
        }
    }

    #[test]
    fn engine_matches_the_single_threaded_core_sweep() {
        let constraints = constraint_grid(0.55, 0.85, 5).unwrap();
        let options = GpaOptions::fast();
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints(constraints.clone())
            .backend(SolverSpec::gpa(options.clone()))
            .build()
            .unwrap();
        // Warm starts off: on II ties the warm-started search may return a
        // different equally-optimal design, so only the cold path is
        // guaranteed bit-identical to the core sweep.
        let engine = run_sweep(
            &grid,
            &ExecutorOptions {
                warm_start: false,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        let problem = PaperCase::Alex16OnTwoFpgas.problem(0.70).unwrap();
        let core = mfa_alloc::explore::sweep_gpa(&problem, &constraints, &options).unwrap();
        assert_eq!(engine[0].points.len(), core.len());
        for (e, c) in engine[0].points.iter().zip(&core) {
            assert_eq!(e.resource_constraint, c.resource_constraint);
            assert!(
                (e.initiation_interval_ms - c.initiation_interval_ms).abs()
                    < 1e-9 * c.initiation_interval_ms.max(1.0)
            );
            assert_eq!(e.average_utilization, c.average_utilization);
            assert_eq!(e.spreading, c.spreading);
        }
    }

    #[test]
    fn infeasible_points_are_absent_not_fatal() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([4])
            // 30 % cannot host CONV2 (37.6 % DSP per CU); 75 % can.
            .constraints([0.30, 0.75])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let series = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
        assert_eq!(series[0].points.len(), 1);
        assert!((series[0].points[0].resource_constraint - 0.75).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_platform_and_budget_axes_run_deterministically() {
        use mfa_platform::{
            DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec,
        };
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .platform(crate::PlatformSpec::platform(fleet))
            .constraints([0.65, 0.80])
            .budget(ResourceBudget::new(
                ResourceVec::new(0.9, 0.9, 0.6, 0.75),
                0.9,
            ))
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &grid,
            &ExecutorOptions {
                num_threads: Some(4),
                chunk_size: 2,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        assert_eq!(zeroed(serial.clone()), zeroed(parallel));
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].platform, "2 FPGAs");
        assert_eq!(serial[1].platform, "1×VU9P + 1×KU115");
        assert_eq!(serial[1].num_fpgas, 2);
        // All three budget points solve on both platforms.
        for s in &serial {
            assert_eq!(s.points.len(), 3, "{}: {:?}", s.platform, s.points);
            // The per-resource point records its full budget.
            let skewed = &s.points[2];
            assert!((skewed.budget.resource_fraction().bram - 0.6).abs() < 1e-12);
            assert!((skewed.budget.bandwidth_fraction() - 0.9).abs() < 1e-12);
            assert!((skewed.resource_constraint - 0.9).abs() < 1e-12);
        }
        // The uniform points inherit the case's full bandwidth.
        assert!((serial[0].points[0].budget.bandwidth_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skip_policy_and_deadline_riders_reach_every_point_request() {
        use mfa_alloc::solver::SkipPolicy;
        use mfa_alloc::AllocError;
        // Every point carries an already-exhausted deadline. Lenient (the
        // default): all points are skipped and the sweep succeeds empty.
        let lenient = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.80])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .point_deadline_seconds(0.0)
            .build()
            .unwrap();
        let series = run_sweep(&lenient, &ExecutorOptions::serial()).unwrap();
        assert!(series[0].points.is_empty());
        // Strict: the same exhausted deadline aborts the sweep with the
        // structured error — the opt-in for exact sweeps that must account
        // for every point.
        let strict = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.65, 0.80])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .point_deadline_seconds(0.0)
            .skip_policy(SkipPolicy::Strict)
            .build()
            .unwrap();
        assert_eq!(strict.skip_policy(), SkipPolicy::Strict);
        let err = run_sweep(&strict, &ExecutorOptions::serial()).unwrap_err();
        assert!(
            matches!(
                &err,
                ExploreError::Solver {
                    source: AllocError::DeadlineExceeded { .. },
                    ..
                }
            ),
            "expected a DeadlineExceeded sweep abort, got {err}"
        );
        // Strict mode still skips genuine infeasibility: a budget too tight
        // for Alex-32's CONV2 is "no data", not an engine failure.
        let strict_infeasible = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([4])
            .constraints([0.30, 0.75])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .skip_policy(SkipPolicy::Strict)
            .build()
            .unwrap();
        let series = run_sweep(&strict_infeasible, &ExecutorOptions::serial()).unwrap();
        assert_eq!(series[0].points.len(), 1);
    }

    #[test]
    fn zero_chunk_size_errors_instead_of_hanging() {
        let grid = alex16_grid(4, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let result = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 0,
                ..ExecutorOptions::serial()
            },
        );
        assert!(matches!(result, Err(ExploreError::InvalidOptions(_))));
        assert!(matches!(
            plan_units(&grid, 0),
            Err(ExploreError::InvalidOptions(_))
        ));
    }

    #[test]
    fn planned_units_tile_every_series_in_order() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([1, 2])
            .constraints([0.6, 0.65, 0.7, 0.75, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        let units = plan_units(&grid, 2).unwrap();
        assert_eq!(
            units,
            vec![
                WorkUnit {
                    series: 0,
                    start: 0,
                    end: 2
                },
                WorkUnit {
                    series: 0,
                    start: 2,
                    end: 4
                },
                WorkUnit {
                    series: 0,
                    start: 4,
                    end: 5
                },
                WorkUnit {
                    series: 1,
                    start: 0,
                    end: 2
                },
                WorkUnit {
                    series: 1,
                    start: 2,
                    end: 4
                },
                WorkUnit {
                    series: 1,
                    start: 4,
                    end: 5
                },
            ]
        );
        // A chunk size at least as large as the budget axis yields one unit
        // per series.
        assert_eq!(plan_units(&grid, 64).unwrap().len(), grid.num_series());
    }

    #[test]
    fn assembly_is_independent_of_completion_order() {
        let grid = alex16_grid(6, vec![SolverSpec::gpa(GpaOptions::fast())]);
        let units = plan_units(&grid, 2).unwrap();
        let in_order: Vec<_> = units
            .iter()
            .map(|u| compute_unit(&grid, u, true).unwrap())
            .collect();
        // Compute the same units back to front — the stand-in for an
        // adversarial scheduler — and slot results by index.
        let mut reversed: Vec<Option<Vec<Option<SweepPoint>>>> = vec![None; units.len()];
        for (idx, unit) in units.iter().enumerate().rev() {
            reversed[idx] = Some(compute_unit(&grid, unit, true).unwrap());
        }
        let reversed: Vec<_> = reversed.into_iter().map(Option::unwrap).collect();
        let mut a = assemble_series(&grid, &units, in_order);
        let mut b = assemble_series(&grid, &units, reversed);
        zero_timing(&mut a);
        zero_timing(&mut b);
        assert_eq!(a, b);
        let mut serial = run_sweep(
            &grid,
            &ExecutorOptions {
                chunk_size: 2,
                ..ExecutorOptions::serial()
            },
        )
        .unwrap();
        zero_timing(&mut serial);
        assert_eq!(a, serial);
    }

    #[test]
    fn series_cover_the_full_axis_product() {
        let grid = SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([1, 2])
            .constraints([0.7, 0.8])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::gpa_labeled(
                "GP+A/gp",
                GpaOptions::paper_defaults(),
            ))
            .build()
            .unwrap();
        let series = run_sweep(&grid, &ExecutorOptions::default()).unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].num_fpgas, 1);
        assert_eq!(series[0].backend, "GP+A");
        assert_eq!(series[1].backend, "GP+A/gp");
        assert_eq!(series[2].num_fpgas, 2);
        for s in &series {
            assert_eq!(s.case, "Alex-16 on 2 FPGAs");
            assert!(!s.points.is_empty());
        }
    }
}
