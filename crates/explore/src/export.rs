//! JSON and CSV export of swept series.
//!
//! The series types carry serde derives so that swapping the vendored
//! offline serde stub for the real crates makes them `serde_json`-ready
//! unchanged; the writers here are small hand-rolled serializers because the
//! stub intentionally provides no runtime (de)serialization. Both formats
//! are plain text aimed at plotting scripts (matplotlib, gnuplot,
//! spreadsheets).

use std::fs;
use std::io;
use std::path::Path;

use crate::executor::SweepSeries;

/// Serializes series as a JSON array, one object per series with its points
/// inline. Each series carries its platform label; each point carries its
/// full per-FPGA budget (the per-class fractions plus the bandwidth cap)
/// next to the scalar `resource_constraint` key. Non-finite floats (never
/// produced by a healthy sweep) map to `null` to keep the output standard
/// JSON.
pub fn series_to_json(series: &[SweepSeries]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str("  {");
        out.push_str(&format!(
            "\"case\": {}, \"platform\": {}, \"num_fpgas\": {}, \"backend\": {}, \"points\": [",
            json_string(&s.case),
            json_string(&s.platform),
            s.num_fpgas,
            json_string(&s.backend)
        ));
        for (j, p) in s.points.iter().enumerate() {
            let fraction = p.budget.resource_fraction();
            out.push_str(&format!(
                "\n    {{\"resource_constraint\": {}, \
                 \"budget\": {{\"lut\": {}, \"ff\": {}, \"bram\": {}, \"dsp\": {}, \
                 \"bandwidth\": {}}}, \
                 \"initiation_interval_ms\": {}, \
                 \"average_utilization\": {}, \"spreading\": {}, \"solve_seconds\": {}, \
                 \"relaxation_gap\": {}, \"bb_nodes\": {}, \"dropped_cus\": {}, \
                 \"warm_start\": {}, \"barrier_iterations\": {}, \
                 \"factorizations\": {}, \"simplex_pivots\": {}, \
                 \"moved_cus\": {}, \"migration_cost\": {}}}",
                json_f64(p.resource_constraint),
                json_f64(fraction.lut),
                json_f64(fraction.ff),
                json_f64(fraction.bram),
                json_f64(fraction.dsp),
                json_f64(p.budget.bandwidth_fraction()),
                json_f64(p.initiation_interval_ms),
                json_f64(p.average_utilization),
                json_f64(p.spreading),
                json_f64(p.solve_seconds),
                json_f64(p.relaxation_gap),
                p.bb_nodes,
                p.dropped_cus,
                json_string(p.warm_start.provenance()),
                p.barrier_iterations,
                p.factorizations,
                p.simplex_pivots,
                p.moved_cus,
                json_f64(p.migration_cost)
            ));
            if j + 1 < s.points.len() {
                out.push(',');
            }
        }
        if s.points.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        out.push('}');
        if i + 1 < series.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Serializes series as CSV with one row per point:
/// `case,platform,num_fpgas,backend,resource_constraint,lut_budget,ff_budget,bram_budget,dsp_budget,bandwidth_budget,initiation_interval_ms,average_utilization,spreading,solve_seconds,relaxation_gap,bb_nodes,dropped_cus,warm_start,barrier_iterations,factorizations,simplex_pivots,moved_cus,migration_cost`.
///
/// The trailing diagnostic columns (relative relaxation gap,
/// branch-and-bound nodes, dropped CUs, warm-start provenance, the
/// machine-independent effort counters, and the reallocation movement
/// metrics) are additive: everything before them is byte-identical to the
/// pre-diagnostics format.
pub fn series_to_csv(series: &[SweepSeries]) -> String {
    let mut out = String::from(
        "case,platform,num_fpgas,backend,resource_constraint,\
         lut_budget,ff_budget,bram_budget,dsp_budget,bandwidth_budget,\
         initiation_interval_ms,average_utilization,spreading,solve_seconds,\
         relaxation_gap,bb_nodes,dropped_cus,warm_start,\
         barrier_iterations,factorizations,simplex_pivots,\
         moved_cus,migration_cost\n",
    );
    for s in series {
        for p in &s.points {
            let fraction = p.budget.resource_fraction();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                csv_field(&s.case),
                csv_field(&s.platform),
                s.num_fpgas,
                csv_field(&s.backend),
                p.resource_constraint,
                fraction.lut,
                fraction.ff,
                fraction.bram,
                fraction.dsp,
                p.budget.bandwidth_fraction(),
                p.initiation_interval_ms,
                p.average_utilization,
                p.spreading,
                p.solve_seconds,
                p.relaxation_gap,
                p.bb_nodes,
                p.dropped_cus,
                p.warm_start.provenance(),
                p.barrier_iterations,
                p.factorizations,
                p.simplex_pivots,
                p.moved_cus,
                p.migration_cost
            ));
        }
    }
    out
}

/// Writes [`series_to_json`] output to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_json(path: impl AsRef<Path>, series: &[SweepSeries]) -> io::Result<()> {
    fs::write(path, series_to_json(series))
}

/// Writes [`series_to_csv`] output to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(path: impl AsRef<Path>, series: &[SweepSeries]) -> io::Result<()> {
    fs::write(path, series_to_csv(series))
}

/// JSON string literal with the escapes required by RFC 8259.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values become `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// CSV field, quoted (with doubled inner quotes) only when necessary.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::explore::SweepPoint;
    use mfa_alloc::solver::WarmStartReport;

    use mfa_platform::{ResourceBudget, ResourceVec};

    fn sample() -> Vec<SweepSeries> {
        vec![
            SweepSeries {
                case: "Alex-16 on 2 FPGAs".into(),
                platform: "2 FPGAs".into(),
                num_fpgas: 2,
                backend: "GP+A".into(),
                points: vec![
                    SweepPoint {
                        resource_constraint: 0.55,
                        budget: ResourceBudget::uniform(0.55),
                        initiation_interval_ms: 1.7,
                        average_utilization: 0.52,
                        spreading: 6.0,
                        solve_seconds: 0.01,
                        relaxation_gap: 0.0625,
                        bb_nodes: 12,
                        barrier_iterations: 0,
                        factorizations: 0,
                        simplex_pivots: 31,
                        dropped_cus: 0,
                        moved_cus: 0,
                        migration_cost: 0.0,
                        warm_start: WarmStartReport::default(),
                    },
                    SweepPoint {
                        resource_constraint: 0.9,
                        budget: ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.5, 0.7), 0.8),
                        initiation_interval_ms: 1.06,
                        average_utilization: 0.5,
                        spreading: 6.5,
                        solve_seconds: 0.02,
                        relaxation_gap: 0.031,
                        bb_nodes: 7,
                        barrier_iterations: 9,
                        factorizations: 48,
                        simplex_pivots: 17,
                        dropped_cus: 1,
                        moved_cus: 4,
                        migration_cost: 2.5,
                        warm_start: WarmStartReport {
                            ii_hint_used: true,
                            dual_hint_used: true,
                            incumbent_used: true,
                        },
                    },
                ],
            },
            SweepSeries {
                case: "odd \"label\", with comma".into(),
                platform: "4×VU9P + 4×KU115".into(),
                num_fpgas: 8,
                backend: "MINLP".into(),
                points: vec![],
            },
        ]
    }

    #[test]
    fn json_has_expected_structure_and_escapes() {
        let json = series_to_json(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"case\": \"Alex-16 on 2 FPGAs\""));
        assert!(json.contains("\"platform\": \"2 FPGAs\""));
        assert!(json.contains("\"platform\": \"4×VU9P + 4×KU115\""));
        assert!(json.contains("\"resource_constraint\": 0.55"));
        assert!(json.contains("\"initiation_interval_ms\": 1.7"));
        // The full budget rides along with every point: uniform on the
        // first, per-resource (BRAM 0.5, bandwidth 0.8) on the second.
        assert!(json.contains(
            "\"budget\": {\"lut\": 0.55, \"ff\": 0.55, \"bram\": 0.55, \"dsp\": 0.55, \
             \"bandwidth\": 1}"
        ));
        assert!(json.contains("\"bram\": 0.5, \"dsp\": 0.7, \"bandwidth\": 0.8"));
        assert!(json.contains("\"odd \\\"label\\\", with comma\""));
        // The effort counters and movement metrics ride along with every
        // point.
        assert!(json.contains(
            "\"warm_start\": \"ii+dual+incumbent\", \"barrier_iterations\": 9, \
             \"factorizations\": 48, \"simplex_pivots\": 17, \
             \"moved_cus\": 4, \"migration_cost\": 2.5"
        ));
        // The empty series still appears, with an empty points array.
        assert!(json.contains("\"points\": []"));
        // Balanced brackets/braces — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_has_a_header_and_one_row_per_point() {
        let csv = series_to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 points (empty series: no rows)
        assert!(lines[0].starts_with(
            "case,platform,num_fpgas,backend,resource_constraint,\
             lut_budget,ff_budget,bram_budget,dsp_budget,bandwidth_budget"
        ));
        assert!(lines[1].starts_with("Alex-16 on 2 FPGAs,2 FPGAs,2,GP+A,0.55,"));
        assert_eq!(lines[1].split(',').count(), 23);
        // The diagnostics ride at the end of the row, movement metrics last.
        assert!(lines[1].ends_with("0.0625,12,0,cold,0,0,31,0,0"));
        assert!(lines[2].ends_with("0.031,7,1,ii+dual+incumbent,9,48,17,4,2.5"));
        // The per-resource budget point spells out its fractions.
        assert!(lines[2].contains("0.9,0.9,0.5,0.7,0.8"));
    }

    #[test]
    fn csv_quotes_fields_that_need_it() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn non_finite_floats_become_null_in_json() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }

    #[test]
    fn files_round_trip_through_the_filesystem() {
        let dir = std::env::temp_dir().join("mfa_explore_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("series.json");
        let csv_path = dir.join("series.csv");
        write_json(&json_path, &sample()).unwrap();
        write_csv(&csv_path, &sample()).unwrap();
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            series_to_json(&sample())
        );
        assert_eq!(
            std::fs::read_to_string(&csv_path).unwrap(),
            series_to_csv(&sample())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
