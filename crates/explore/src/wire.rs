//! Wire codec for the multi-process sweep dispatcher.
//!
//! Encodes every type that crosses a process boundary — the full
//! [`SweepGrid`] (cases, platforms, budgets, solver backends), [`WorkUnit`]s
//! and per-unit [`SweepPoint`] results — as [`Json`] documents, and decodes
//! them back through the types' own validating constructors so a malformed
//! or malicious frame surfaces as a [`WireError`] instead of a panic.
//!
//! Two invariants make the codec fit for the byte-identical sharding
//! guarantee:
//!
//! * **Exact float round-trips.** Numbers are written in Rust's
//!   shortest-round-trip notation and parsed back with `str::parse::<f64>`,
//!   so `decode(encode(x)) == x` bit-for-bit for every finite float.
//! * **NaN-freedom.** Non-finite floats are unrepresentable in JSON; the
//!   encoder rejects them with [`WireError::NonFinite`] rather than silently
//!   degrading, and the decoder can therefore trust every number it accepts.
//!
//! The string-level entry points ([`encode_grid`]/[`decode_grid`] and
//! friends) are what the dispatcher protocol embeds into its JSON-lines
//! frames; the `*_to_json`/`*_from_json` pairs are exposed for composing
//! larger documents.

use std::fmt;

use mfa_alloc::discretize::DiscretizeOptions;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::explore::SweepPoint;
use mfa_alloc::gp_step::RelaxationBackend;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_alloc::solver::{DualWarmStart, SkipPolicy, WarmStart, WarmStartReport};
use mfa_alloc::{AllocationProblem, GoalWeights, Kernel};
use mfa_minlp::SolverOptions;
use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec};

use crate::executor::WorkUnit;
use crate::grid::{BudgetSpec, CaseSpec, PlatformSpec, SolverSpec, SweepGrid};
use crate::json::Json;

/// Error returned by the wire codec.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The input was not a JSON document.
    Parse(String),
    /// The document was valid JSON but did not match the expected schema
    /// (missing field, wrong type, unknown variant tag).
    Schema(String),
    /// A field violated a domain invariant (out-of-range fraction, empty
    /// axis, non-finite float, …).
    Invalid(String),
    /// A float to be encoded was NaN or infinite.
    NonFinite(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse(msg) => write!(f, "malformed JSON: {msg}"),
            WireError::Schema(msg) => write!(f, "schema mismatch: {msg}"),
            WireError::Invalid(msg) => write!(f, "invalid value: {msg}"),
            WireError::NonFinite(field) => {
                write!(
                    f,
                    "non-finite float in field '{field}' cannot cross the wire"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Decode helpers.

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    value
        .get(key)
        .ok_or_else(|| WireError::Schema(format!("missing field '{key}'")))
}

fn f64_field(value: &Json, key: &str) -> Result<f64, WireError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| WireError::Schema(format!("field '{key}' must be a number")))
}

fn usize_field(value: &Json, key: &str) -> Result<usize, WireError> {
    field(value, key)?
        .as_usize()
        .ok_or_else(|| WireError::Schema(format!("field '{key}' must be a nonnegative integer")))
}

fn str_field<'a>(value: &'a Json, key: &str) -> Result<&'a str, WireError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| WireError::Schema(format!("field '{key}' must be a string")))
}

fn bool_field(value: &Json, key: &str) -> Result<bool, WireError> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| WireError::Schema(format!("field '{key}' must be a boolean")))
}

fn arr_field<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    field(value, key)?
        .as_arr()
        .ok_or_else(|| WireError::Schema(format!("field '{key}' must be an array")))
}

/// Encode-side guard: every float put on the wire must be finite.
fn num(name: &'static str, value: f64) -> Result<Json, WireError> {
    if value.is_finite() {
        Ok(Json::Num(value))
    } else {
        Err(WireError::NonFinite(name))
    }
}

// ---------------------------------------------------------------------------
// Platform-layer types.

fn resource_vec_to_json(v: &ResourceVec) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        ("lut", num("lut", v.lut)?),
        ("ff", num("ff", v.ff)?),
        ("bram", num("bram", v.bram)?),
        ("dsp", num("dsp", v.dsp)?),
    ]))
}

fn resource_vec_from_json(value: &Json) -> Result<ResourceVec, WireError> {
    Ok(ResourceVec {
        lut: f64_field(value, "lut")?,
        ff: f64_field(value, "ff")?,
        bram: f64_field(value, "bram")?,
        dsp: f64_field(value, "dsp")?,
    })
}

/// Encodes a [`ResourceBudget`] as a [`Json`] object.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any fraction is NaN or infinite.
pub fn budget_to_json(b: &ResourceBudget) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        ("resources", resource_vec_to_json(b.resource_fraction())?),
        ("bandwidth", num("bandwidth", b.bandwidth_fraction())?),
    ]))
}

/// Decodes a [`ResourceBudget`] from its [`budget_to_json`] encoding.
///
/// # Errors
///
/// Returns [`WireError::Schema`] on shape mismatches and
/// [`WireError::Invalid`] when a fraction lies outside `(0, 1]`.
pub fn budget_from_json(value: &Json) -> Result<ResourceBudget, WireError> {
    let resources = resource_vec_from_json(field(value, "resources")?)?;
    let bandwidth = f64_field(value, "bandwidth")?;
    // `ResourceBudget::new` panics on invalid fractions; mirror its checks so
    // a bad frame errors instead.
    let in_unit = |v: f64| v.is_finite() && v > 0.0 && v <= 1.0;
    if !(in_unit(resources.lut)
        && in_unit(resources.ff)
        && in_unit(resources.bram)
        && in_unit(resources.dsp))
    {
        return Err(WireError::Invalid(
            "budget resource fractions must lie in (0, 1]".into(),
        ));
    }
    if !in_unit(bandwidth) {
        return Err(WireError::Invalid(
            "budget bandwidth fraction must lie in (0, 1]".into(),
        ));
    }
    Ok(ResourceBudget::new(resources, bandwidth))
}

fn device_to_json(d: &FpgaDevice) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        ("name", Json::str(d.name())),
        ("capacity", resource_vec_to_json(d.capacity())?),
        (
            "dram_bandwidth_gbps",
            num("dram_bandwidth_gbps", d.dram_bandwidth_gbps())?,
        ),
    ]))
}

fn device_from_json(value: &Json) -> Result<FpgaDevice, WireError> {
    let name = str_field(value, "name")?;
    let capacity = resource_vec_from_json(field(value, "capacity")?)?;
    let bandwidth = f64_field(value, "dram_bandwidth_gbps")?;
    if !capacity.is_valid() {
        return Err(WireError::Invalid(format!(
            "device {name}: capacities must be finite and nonnegative"
        )));
    }
    if !(bandwidth.is_finite() && bandwidth >= 0.0) {
        return Err(WireError::Invalid(format!(
            "device {name}: DRAM bandwidth must be finite and nonnegative"
        )));
    }
    Ok(FpgaDevice::new(name, capacity, bandwidth))
}

fn platform_to_json(p: &HeterogeneousPlatform) -> Result<Json, WireError> {
    let groups = p
        .groups()
        .iter()
        .map(|g| {
            let mut fields = vec![
                ("device", device_to_json(g.device())?),
                ("count", Json::Num(g.count() as f64)),
            ];
            // Scaling knobs ride the wire only when set, so pre-reallocation
            // peers keep accepting frames from unscaled platforms.
            if g.wcet_scale() != 1.0 {
                fields.push(("wcet_scale", num("wcet_scale", g.wcet_scale())?));
            }
            if g.budget_scale() != 1.0 {
                fields.push(("budget_scale", num("budget_scale", g.budget_scale())?));
            }
            Ok(Json::obj(fields))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(Json::obj(vec![
        ("name", Json::str(p.name())),
        ("groups", Json::Arr(groups)),
    ]))
}

fn platform_from_json(value: &Json) -> Result<HeterogeneousPlatform, WireError> {
    let name = str_field(value, "name")?;
    let groups = arr_field(value, "groups")?
        .iter()
        .map(|g| {
            let device = device_from_json(field(g, "device")?)?;
            let count = usize_field(g, "count")?;
            if count == 0 {
                return Err(WireError::Invalid(
                    "a device group needs at least one FPGA".into(),
                ));
            }
            let mut group = DeviceGroup::new(device, count);
            // Absent on frames from before the reallocation refactor:
            // default to the neutral factors those platforms implied.
            if field(g, "wcet_scale").is_ok() {
                let scale = f64_field(g, "wcet_scale")?;
                if !(scale.is_finite() && scale >= 1.0) {
                    return Err(WireError::Invalid(format!(
                        "WCET scale must be a finite slowdown factor ≥ 1, got {scale}"
                    )));
                }
                group = group.with_wcet_scale(scale);
            }
            if field(g, "budget_scale").is_ok() {
                let scale = f64_field(g, "budget_scale")?;
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(WireError::Invalid(format!(
                        "budget scale must be a finite positive factor, got {scale}"
                    )));
                }
                group = group.with_budget_scale(scale);
            }
            Ok(group)
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    if groups.is_empty() {
        return Err(WireError::Invalid(
            "a platform needs at least one device group".into(),
        ));
    }
    Ok(HeterogeneousPlatform::new(name, groups))
}

// ---------------------------------------------------------------------------
// Problem-layer types.

fn kernel_to_json(k: &Kernel) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        ("name", Json::str(k.name())),
        ("wcet_ms", num("wcet_ms", k.wcet_ms())?),
        ("resources", resource_vec_to_json(k.resources())?),
        ("bandwidth", num("bandwidth", k.bandwidth())?),
    ]))
}

fn kernel_from_json(value: &Json) -> Result<Kernel, WireError> {
    Kernel::new(
        str_field(value, "name")?,
        f64_field(value, "wcet_ms")?,
        resource_vec_from_json(field(value, "resources")?)?,
        f64_field(value, "bandwidth")?,
    )
    .map_err(|err| WireError::Invalid(err.to_string()))
}

/// Encodes a full [`AllocationProblem`] (kernels, platform, budget, goal
/// weights) as a [`Json`] object. This is the canonical problem encoding:
/// content fingerprints and the allocation-service request frames both hash
/// and ship it, so its field order is part of the stable wire format.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any float in the problem is NaN or
/// infinite (a validated problem never contains one).
pub fn problem_to_json(p: &AllocationProblem) -> Result<Json, WireError> {
    let kernels = p
        .kernels()
        .iter()
        .map(kernel_to_json)
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(Json::obj(vec![
        ("kernels", Json::Arr(kernels)),
        ("platform", platform_to_json(p.platform())?),
        ("budget", budget_to_json(p.budget())?),
        (
            "weights",
            Json::obj(vec![
                ("alpha", num("alpha", p.weights().alpha)?),
                ("beta", num("beta", p.weights().beta)?),
            ]),
        ),
    ]))
}

/// Decodes an [`AllocationProblem`] from its [`problem_to_json`] encoding,
/// re-validating through the problem builder so a malformed document
/// surfaces as a [`WireError`] instead of an inconsistent problem.
///
/// # Errors
///
/// Returns [`WireError::Schema`] on shape mismatches and
/// [`WireError::Invalid`] when the decoded fields violate the problem's own
/// invariants.
pub fn problem_from_json(value: &Json) -> Result<AllocationProblem, WireError> {
    let kernels = arr_field(value, "kernels")?
        .iter()
        .map(kernel_from_json)
        .collect::<Result<Vec<_>, WireError>>()?;
    let platform = platform_from_json(field(value, "platform")?)?;
    let budget = budget_from_json(field(value, "budget")?)?;
    let weights = field(value, "weights")?;
    let alpha = f64_field(weights, "alpha")?;
    let beta = f64_field(weights, "beta")?;
    if !(alpha.is_finite() && alpha >= 0.0 && beta.is_finite() && beta >= 0.0) {
        return Err(WireError::Invalid(
            "goal weights must be nonnegative and finite".into(),
        ));
    }
    AllocationProblem::builder()
        .kernels(kernels)
        .platform(platform)
        .budget(budget)
        .weights(GoalWeights::new(alpha, beta))
        .build()
        .map_err(|err| WireError::Invalid(err.to_string()))
}

// ---------------------------------------------------------------------------
// Grid axes.

fn case_to_json(c: &CaseSpec) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        ("label", Json::str(c.label())),
        ("base", problem_to_json(c.base())?),
    ]))
}

fn case_from_json(value: &Json) -> Result<CaseSpec, WireError> {
    Ok(CaseSpec::new(
        str_field(value, "label")?,
        problem_from_json(field(value, "base")?)?,
    ))
}

fn platform_spec_to_json(p: &PlatformSpec) -> Result<Json, WireError> {
    Ok(match p {
        PlatformSpec::FpgaCount(n) => Json::obj(vec![
            ("kind", Json::str("fpga_count")),
            ("count", Json::Num(*n as f64)),
        ]),
        PlatformSpec::Platform { label, platform } => Json::obj(vec![
            ("kind", Json::str("platform")),
            ("label", Json::str(label.as_str())),
            ("platform", platform_to_json(platform)?),
        ]),
    })
}

fn platform_spec_from_json(value: &Json) -> Result<PlatformSpec, WireError> {
    match str_field(value, "kind")? {
        "fpga_count" => {
            let count = usize_field(value, "count")?;
            if count == 0 {
                return Err(WireError::Invalid("FPGA count must be at least 1".into()));
            }
            Ok(PlatformSpec::FpgaCount(count))
        }
        "platform" => Ok(PlatformSpec::platform_labeled(
            str_field(value, "label")?,
            platform_from_json(field(value, "platform")?)?,
        )),
        other => Err(WireError::Schema(format!(
            "unknown platform spec kind '{other}'"
        ))),
    }
}

fn budget_spec_to_json(b: &BudgetSpec) -> Result<Json, WireError> {
    Ok(match b {
        BudgetSpec::Uniform(fraction) => Json::obj(vec![
            ("kind", Json::str("uniform")),
            ("fraction", num("fraction", *fraction)?),
        ]),
        BudgetSpec::PerResource(budget) => Json::obj(vec![
            ("kind", Json::str("per_resource")),
            ("budget", budget_to_json(budget)?),
        ]),
    })
}

fn budget_spec_from_json(value: &Json) -> Result<BudgetSpec, WireError> {
    match str_field(value, "kind")? {
        "uniform" => {
            let fraction = f64_field(value, "fraction")?;
            if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
                return Err(WireError::Invalid(format!(
                    "uniform constraint must be a fraction in (0, 1], got {fraction}"
                )));
            }
            Ok(BudgetSpec::Uniform(fraction))
        }
        "per_resource" => Ok(BudgetSpec::PerResource(budget_from_json(field(
            value, "budget",
        )?)?)),
        other => Err(WireError::Schema(format!(
            "unknown budget spec kind '{other}'"
        ))),
    }
}

fn relaxation_backend_to_json(b: &RelaxationBackend) -> Json {
    Json::str(match b {
        RelaxationBackend::GeometricProgram => "gp",
        RelaxationBackend::Bisection => "bisection",
    })
}

fn relaxation_backend_from_json(value: &Json) -> Result<RelaxationBackend, WireError> {
    match value.as_str() {
        Some("gp") => Ok(RelaxationBackend::GeometricProgram),
        Some("bisection") => Ok(RelaxationBackend::Bisection),
        Some(other) => Err(WireError::Schema(format!(
            "unknown relaxation backend '{other}'"
        ))),
        None => Err(WireError::Schema(
            "relaxation backend must be a string".into(),
        )),
    }
}

fn gpa_options_to_json(o: &GpaOptions) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        (
            "relaxation_backend",
            relaxation_backend_to_json(&o.relaxation_backend),
        ),
        (
            "discretize",
            Json::obj(vec![
                ("backend", relaxation_backend_to_json(&o.discretize.backend)),
                (
                    "integer_tolerance",
                    num("integer_tolerance", o.discretize.integer_tolerance)?,
                ),
                ("max_nodes", Json::Num(o.discretize.max_nodes as f64)),
            ]),
        ),
        (
            "greedy",
            Json::obj(vec![
                (
                    "max_relaxation",
                    num("max_relaxation", o.greedy.max_relaxation)?,
                ),
                (
                    "relaxation_step",
                    num("relaxation_step", o.greedy.relaxation_step)?,
                ),
            ]),
        ),
    ]))
}

fn gpa_options_from_json(value: &Json) -> Result<GpaOptions, WireError> {
    let discretize = field(value, "discretize")?;
    let greedy = field(value, "greedy")?;
    Ok(GpaOptions {
        relaxation_backend: relaxation_backend_from_json(field(value, "relaxation_backend")?)?,
        discretize: DiscretizeOptions {
            backend: relaxation_backend_from_json(field(discretize, "backend")?)?,
            integer_tolerance: f64_field(discretize, "integer_tolerance")?,
            max_nodes: usize_field(discretize, "max_nodes")?,
        },
        greedy: GreedyOptions {
            max_relaxation: f64_field(greedy, "max_relaxation")?,
            relaxation_step: f64_field(greedy, "relaxation_step")?,
        },
    })
}

fn exact_options_to_json(o: &ExactOptions) -> Result<Json, WireError> {
    let time_limit = match o.solver.time_limit_seconds {
        Some(seconds) => num("time_limit_seconds", seconds)?,
        None => Json::Null,
    };
    Ok(Json::obj(vec![
        (
            "mode",
            Json::str(match o.mode {
                ExactMode::IiOnly => "ii_only",
                ExactMode::IiAndSpreading => "ii_and_spreading",
            }),
        ),
        (
            "solver",
            Json::obj(vec![
                ("max_nodes", Json::Num(o.solver.max_nodes as f64)),
                ("time_limit_seconds", time_limit),
                (
                    "integer_tolerance",
                    num("integer_tolerance", o.solver.integer_tolerance)?,
                ),
                (
                    "feasibility_tolerance",
                    num("feasibility_tolerance", o.solver.feasibility_tolerance)?,
                ),
                ("absolute_gap", num("absolute_gap", o.solver.absolute_gap)?),
                ("relative_gap", num("relative_gap", o.solver.relative_gap)?),
                ("cut_rounds", Json::Num(o.solver.cut_rounds as f64)),
            ]),
        ),
        ("symmetry_breaking", Json::Bool(o.symmetry_breaking)),
    ]))
}

fn exact_options_from_json(value: &Json) -> Result<ExactOptions, WireError> {
    let mode = match str_field(value, "mode")? {
        "ii_only" => ExactMode::IiOnly,
        "ii_and_spreading" => ExactMode::IiAndSpreading,
        other => return Err(WireError::Schema(format!("unknown exact mode '{other}'"))),
    };
    let solver = field(value, "solver")?;
    let time_limit_seconds = match field(solver, "time_limit_seconds")? {
        Json::Null => None,
        other => Some(other.as_f64().ok_or_else(|| {
            WireError::Schema("field 'time_limit_seconds' must be a number or null".into())
        })?),
    };
    Ok(ExactOptions {
        mode,
        solver: SolverOptions {
            max_nodes: usize_field(solver, "max_nodes")?,
            time_limit_seconds,
            integer_tolerance: f64_field(solver, "integer_tolerance")?,
            feasibility_tolerance: f64_field(solver, "feasibility_tolerance")?,
            absolute_gap: f64_field(solver, "absolute_gap")?,
            relative_gap: f64_field(solver, "relative_gap")?,
            cut_rounds: usize_field(solver, "cut_rounds")?,
        },
        symmetry_breaking: bool_field(value, "symmetry_breaking")?,
    })
}

fn solver_spec_to_json(s: &SolverSpec) -> Result<Json, WireError> {
    Ok(match s {
        SolverSpec::Gpa { label, options } => Json::obj(vec![
            ("kind", Json::str("gpa")),
            ("label", Json::str(label.as_str())),
            ("options", gpa_options_to_json(options)?),
        ]),
        SolverSpec::Exact { label, options } => Json::obj(vec![
            ("kind", Json::str("exact")),
            ("label", Json::str(label.as_str())),
            ("options", exact_options_to_json(options)?),
        ]),
    })
}

fn solver_spec_from_json(value: &Json) -> Result<SolverSpec, WireError> {
    let label = str_field(value, "label")?;
    match str_field(value, "kind")? {
        "gpa" => Ok(SolverSpec::gpa_labeled(
            label,
            gpa_options_from_json(field(value, "options")?)?,
        )),
        "exact" => Ok(SolverSpec::exact_labeled(
            label,
            exact_options_from_json(field(value, "options")?)?,
        )),
        other => Err(WireError::Schema(format!(
            "unknown solver spec kind '{other}'"
        ))),
    }
}

/// Encodes only the *behaviour-relevant* part of a [`SolverSpec`] — kind and
/// options, with the display label stripped — for content fingerprinting:
/// renaming a backend must not invalidate stored results.
pub(crate) fn solver_config_to_json(s: &SolverSpec) -> Result<Json, WireError> {
    Ok(match s {
        SolverSpec::Gpa { options, .. } => Json::obj(vec![
            ("kind", Json::str("gpa")),
            ("options", gpa_options_to_json(options)?),
        ]),
        SolverSpec::Exact { options, .. } => Json::obj(vec![
            ("kind", Json::str("exact")),
            ("options", exact_options_to_json(options)?),
        ]),
    })
}

// ---------------------------------------------------------------------------
// Warm-start hints.

/// Encodes a [`WarmStart`] hint as a [`Json`] object (absent parts encode as
/// `null`). Used by the sweep store and the dispatcher's seeded-unit frames.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any float in the hint is NaN or
/// infinite.
pub fn warm_hint_to_json(w: &WarmStart) -> Result<Json, WireError> {
    let relaxed = match w.relaxed_ii_ms {
        Some(v) => num("relaxed_ii_ms", v)?,
        None => Json::Null,
    };
    let counts = match &w.cu_counts {
        Some(c) => Json::Arr(c.iter().map(|&n| Json::Num(f64::from(n))).collect()),
        None => Json::Null,
    };
    let dual = match &w.gp_dual {
        Some(d) => Json::obj(vec![
            ("barrier_t", num("barrier_t", d.barrier_t)?),
            (
                "duals",
                Json::Arr(
                    d.duals
                        .iter()
                        .map(|&v| num("duals", v))
                        .collect::<Result<Vec<_>, WireError>>()?,
                ),
            ),
        ]),
        None => Json::Null,
    };
    Ok(Json::obj(vec![
        ("relaxed_ii_ms", relaxed),
        ("cu_counts", counts),
        ("gp_dual", dual),
    ]))
}

/// Decodes a [`WarmStart`] hint from its [`warm_hint_to_json`] encoding.
///
/// # Errors
///
/// Returns [`WireError::Schema`] on shape mismatches and
/// [`WireError::Invalid`] on out-of-range CU counts.
pub fn warm_hint_from_json(value: &Json) -> Result<WarmStart, WireError> {
    let relaxed_ii_ms = match field(value, "relaxed_ii_ms")? {
        Json::Null => None,
        other => Some(other.as_f64().ok_or_else(|| {
            WireError::Schema("field 'relaxed_ii_ms' must be a number or null".into())
        })?),
    };
    let cu_counts = match field(value, "cu_counts")? {
        Json::Null => None,
        Json::Arr(items) => Some(
            items
                .iter()
                .map(|item| {
                    let raw = item.as_f64().ok_or_else(|| {
                        WireError::Schema("cu_counts entries must be numbers".into())
                    })?;
                    if raw < 0.0 || raw.fract() != 0.0 || raw > f64::from(u32::MAX) {
                        return Err(WireError::Invalid(format!(
                            "cu_counts entry {raw} is not a u32"
                        )));
                    }
                    Ok(raw as u32)
                })
                .collect::<Result<Vec<_>, WireError>>()?,
        ),
        _ => {
            return Err(WireError::Schema(
                "field 'cu_counts' must be an array or null".into(),
            ))
        }
    };
    let gp_dual = match field(value, "gp_dual")? {
        Json::Null => None,
        dual => Some(DualWarmStart {
            barrier_t: f64_field(dual, "barrier_t")?,
            duals: arr_field(dual, "duals")?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| WireError::Schema("duals entries must be numbers".into()))
                })
                .collect::<Result<Vec<_>, WireError>>()?,
        }),
    };
    Ok(WarmStart {
        relaxed_ii_ms,
        cu_counts,
        gp_dual,
    })
}

// ---------------------------------------------------------------------------
// Top-level documents.

/// Encodes a full sweep grid as a [`Json`] document.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any float in the grid is NaN or
/// infinite (a healthy grid never contains one).
pub fn grid_to_json(grid: &SweepGrid) -> Result<Json, WireError> {
    let cases = grid
        .cases
        .iter()
        .map(case_to_json)
        .collect::<Result<Vec<_>, _>>()?;
    let platforms = grid
        .platforms
        .iter()
        .map(platform_spec_to_json)
        .collect::<Result<Vec<_>, _>>()?;
    let budgets = grid
        .budgets
        .iter()
        .map(budget_spec_to_json)
        .collect::<Result<Vec<_>, _>>()?;
    let backends = grid
        .backends
        .iter()
        .map(solver_spec_to_json)
        .collect::<Result<Vec<_>, _>>()?;
    let mut fields = vec![
        ("cases", Json::Arr(cases)),
        ("platforms", Json::Arr(platforms)),
        ("budgets", Json::Arr(budgets)),
        ("backends", Json::Arr(backends)),
        (
            "skip_policy",
            Json::Str(grid.skip_policy().label().to_owned()),
        ),
    ];
    if let Some(seconds) = grid.point_deadline_seconds() {
        fields.push((
            "point_deadline_seconds",
            num("point_deadline_seconds", seconds)?,
        ));
    }
    Ok(Json::obj(fields))
}

/// Decodes a sweep grid from a [`Json`] document, re-validating every axis
/// through [`SweepGrid::builder`].
///
/// # Errors
///
/// Returns [`WireError::Schema`] on shape mismatches and
/// [`WireError::Invalid`] when a value violates a grid invariant.
pub fn grid_from_json(value: &Json) -> Result<SweepGrid, WireError> {
    let mut builder = SweepGrid::builder();
    for case in arr_field(value, "cases")? {
        builder = builder.case(case_from_json(case)?);
    }
    for platform in arr_field(value, "platforms")? {
        builder = builder.platform(platform_spec_from_json(platform)?);
    }
    for budget in arr_field(value, "budgets")? {
        let spec = budget_spec_from_json(budget)?;
        builder = match spec {
            BudgetSpec::Uniform(fraction) => builder.constraints([fraction]),
            BudgetSpec::PerResource(budget) => builder.budget(budget),
        };
    }
    for backend in arr_field(value, "backends")? {
        builder = builder.backend(solver_spec_from_json(backend)?);
    }
    // Absent on frames from before the request API: default to lenient,
    // the policy every earlier sweep implicitly used.
    if field(value, "skip_policy").is_ok() {
        let policy = str_field(value, "skip_policy")?;
        builder =
            builder
                .skip_policy(SkipPolicy::from_label(policy).ok_or_else(|| {
                    WireError::Invalid(format!("unknown skip policy {policy:?}"))
                })?);
    }
    if field(value, "point_deadline_seconds").is_ok() {
        builder = builder.point_deadline_seconds(f64_field(value, "point_deadline_seconds")?);
    }
    builder
        .build()
        .map_err(|err| WireError::Invalid(err.to_string()))
}

/// Encodes one work unit.
pub fn unit_to_json(unit: &WorkUnit) -> Json {
    Json::obj(vec![
        ("series", Json::Num(unit.series as f64)),
        ("start", Json::Num(unit.start as f64)),
        ("end", Json::Num(unit.end as f64)),
    ])
}

/// Decodes one work unit.
///
/// # Errors
///
/// Returns [`WireError::Schema`] on shape mismatches and
/// [`WireError::Invalid`] for an empty or inverted range.
pub fn unit_from_json(value: &Json) -> Result<WorkUnit, WireError> {
    let unit = WorkUnit {
        series: usize_field(value, "series")?,
        start: usize_field(value, "start")?,
        end: usize_field(value, "end")?,
    };
    if unit.start >= unit.end {
        return Err(WireError::Invalid(format!(
            "work unit range [{}, {}) is empty",
            unit.start, unit.end
        )));
    }
    Ok(unit)
}

/// Encodes one solved sweep point.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any metric is NaN or infinite.
pub fn point_to_json(point: &SweepPoint) -> Result<Json, WireError> {
    Ok(Json::obj(vec![
        (
            "resource_constraint",
            num("resource_constraint", point.resource_constraint)?,
        ),
        ("budget", budget_to_json(&point.budget)?),
        (
            "initiation_interval_ms",
            num("initiation_interval_ms", point.initiation_interval_ms)?,
        ),
        (
            "average_utilization",
            num("average_utilization", point.average_utilization)?,
        ),
        ("spreading", num("spreading", point.spreading)?),
        ("solve_seconds", num("solve_seconds", point.solve_seconds)?),
        (
            "relaxation_gap",
            num("relaxation_gap", point.relaxation_gap)?,
        ),
        ("bb_nodes", Json::Num(point.bb_nodes as f64)),
        (
            "barrier_iterations",
            Json::Num(point.barrier_iterations as f64),
        ),
        ("factorizations", Json::Num(point.factorizations as f64)),
        ("simplex_pivots", Json::Num(point.simplex_pivots as f64)),
        ("dropped_cus", Json::Num(f64::from(point.dropped_cus))),
        ("moved_cus", Json::Num(f64::from(point.moved_cus))),
        (
            "migration_cost",
            num("migration_cost", point.migration_cost)?,
        ),
        (
            "warm_start",
            Json::Str(point.warm_start.provenance().to_owned()),
        ),
    ]))
}

/// Decodes one solved sweep point.
///
/// # Errors
///
/// Returns [`WireError::Schema`] or [`WireError::Invalid`] on malformed
/// input.
pub fn point_from_json(value: &Json) -> Result<SweepPoint, WireError> {
    Ok(SweepPoint {
        resource_constraint: f64_field(value, "resource_constraint")?,
        budget: budget_from_json(field(value, "budget")?)?,
        initiation_interval_ms: f64_field(value, "initiation_interval_ms")?,
        average_utilization: f64_field(value, "average_utilization")?,
        spreading: f64_field(value, "spreading")?,
        solve_seconds: f64_field(value, "solve_seconds")?,
        relaxation_gap: f64_field(value, "relaxation_gap")?,
        bb_nodes: usize_field(value, "bb_nodes")?,
        // Absent on frames from before the incremental-solve effort
        // counters: default to zero, exactly what those sweeps recorded.
        barrier_iterations: if field(value, "barrier_iterations").is_ok() {
            usize_field(value, "barrier_iterations")?
        } else {
            0
        },
        factorizations: if field(value, "factorizations").is_ok() {
            usize_field(value, "factorizations")?
        } else {
            0
        },
        simplex_pivots: if field(value, "simplex_pivots").is_ok() {
            usize_field(value, "simplex_pivots")?
        } else {
            0
        },
        dropped_cus: {
            let raw = f64_field(value, "dropped_cus")?;
            if raw < 0.0 || raw.fract() != 0.0 || raw > f64::from(u32::MAX) {
                return Err(WireError::Invalid(format!(
                    "dropped_cus must be a u32, got {raw}"
                )));
            }
            raw as u32
        },
        // Absent on frames from before the reallocation refactor: default to
        // zero movement, exactly what those static sweeps performed.
        moved_cus: if field(value, "moved_cus").is_ok() {
            let raw = f64_field(value, "moved_cus")?;
            if raw < 0.0 || raw.fract() != 0.0 || raw > f64::from(u32::MAX) {
                return Err(WireError::Invalid(format!(
                    "moved_cus must be a u32, got {raw}"
                )));
            }
            raw as u32
        } else {
            0
        },
        migration_cost: if field(value, "migration_cost").is_ok() {
            f64_field(value, "migration_cost")?
        } else {
            0.0
        },
        warm_start: {
            let label = str_field(value, "warm_start")?;
            WarmStartReport::from_provenance(label).ok_or_else(|| {
                WireError::Invalid(format!("unknown warm-start provenance {label:?}"))
            })?
        },
    })
}

/// Encodes a unit's result: one entry per budget point, `null` for skipped
/// (infeasible/unplaceable) points.
///
/// # Errors
///
/// Returns [`WireError::NonFinite`] if any point metric is NaN or infinite.
pub fn points_to_json(points: &[Option<SweepPoint>]) -> Result<Json, WireError> {
    Ok(Json::Arr(
        points
            .iter()
            .map(|p| match p {
                Some(point) => point_to_json(point),
                None => Ok(Json::Null),
            })
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

/// Decodes a unit's result array.
///
/// # Errors
///
/// Returns [`WireError::Schema`] or [`WireError::Invalid`] on malformed
/// input.
pub fn points_from_json(value: &Json) -> Result<Vec<Option<SweepPoint>>, WireError> {
    value
        .as_arr()
        .ok_or_else(|| WireError::Schema("unit result must be an array".into()))?
        .iter()
        .map(|p| match p {
            Json::Null => Ok(None),
            other => point_from_json(other).map(Some),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// String-level wrappers.

/// Encodes a grid as a compact single-line JSON string.
///
/// # Errors
///
/// See [`grid_to_json`].
pub fn encode_grid(grid: &SweepGrid) -> Result<String, WireError> {
    Ok(grid_to_json(grid)?.to_string())
}

/// Parses and decodes a grid.
///
/// # Errors
///
/// Returns [`WireError::Parse`] on malformed JSON, otherwise see
/// [`grid_from_json`].
pub fn decode_grid(input: &str) -> Result<SweepGrid, WireError> {
    let doc = Json::parse(input).map_err(|err| WireError::Parse(err.to_string()))?;
    grid_from_json(&doc)
}

/// Encodes a work unit as a compact single-line JSON string.
pub fn encode_unit(unit: &WorkUnit) -> String {
    unit_to_json(unit).to_string()
}

/// Parses and decodes a work unit.
///
/// # Errors
///
/// Returns [`WireError::Parse`] on malformed JSON, otherwise see
/// [`unit_from_json`].
pub fn decode_unit(input: &str) -> Result<WorkUnit, WireError> {
    let doc = Json::parse(input).map_err(|err| WireError::Parse(err.to_string()))?;
    unit_from_json(&doc)
}

/// Encodes a unit result as a compact single-line JSON string.
///
/// # Errors
///
/// See [`points_to_json`].
pub fn encode_points(points: &[Option<SweepPoint>]) -> Result<String, WireError> {
    Ok(points_to_json(points)?.to_string())
}

/// Parses and decodes a unit result.
///
/// # Errors
///
/// Returns [`WireError::Parse`] on malformed JSON, otherwise see
/// [`points_from_json`].
pub fn decode_points(input: &str) -> Result<Vec<Option<SweepPoint>>, WireError> {
    let doc = Json::parse(input).map_err(|err| WireError::Parse(err.to_string()))?;
    points_from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::cases::PaperCase;

    fn sample_grid() -> SweepGrid {
        let fleet = HeterogeneousPlatform::new(
            "1×VU9P + 1×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 1),
            ],
        );
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .platform(PlatformSpec::platform(fleet))
            .constraints([0.6, 0.75])
            .budget(ResourceBudget::new(
                ResourceVec::new(0.9, 0.9, 0.5, 0.7),
                0.8,
            ))
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::exact(ExactOptions::ii_only_with_budget(
                100, 2.5,
            )))
            .build()
            .unwrap()
    }

    #[test]
    fn grid_round_trips_exactly() {
        let grid = sample_grid();
        let encoded = encode_grid(&grid).unwrap();
        assert!(!encoded.contains('\n'), "frames must be single-line");
        let decoded = decode_grid(&encoded).unwrap();
        assert_eq!(decoded, grid);
        // Encoding is deterministic.
        assert_eq!(encode_grid(&decoded).unwrap(), encoded);
    }

    #[test]
    fn unit_and_points_round_trip_exactly() {
        let unit = WorkUnit {
            series: 3,
            start: 8,
            end: 16,
        };
        assert_eq!(decode_unit(&encode_unit(&unit)).unwrap(), unit);

        let points = vec![
            None,
            Some(SweepPoint {
                resource_constraint: 0.65,
                budget: ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.5, 0.7), 0.8),
                // 0.1 + 0.2 has a long binary expansion: exercises the
                // shortest-round-trip float path, not just tidy literals.
                initiation_interval_ms: 0.1 + 0.2,
                average_utilization: 0.517,
                spreading: 6.0,
                solve_seconds: 0.001234,
                relaxation_gap: 0.01875,
                bb_nodes: 23,
                barrier_iterations: 11,
                factorizations: 87,
                simplex_pivots: 42,
                dropped_cus: 2,
                moved_cus: 3,
                migration_cost: 0.1 + 0.7,
                warm_start: WarmStartReport {
                    ii_hint_used: true,
                    dual_hint_used: true,
                    incumbent_used: false,
                },
            }),
        ];
        let decoded = decode_points(&encode_points(&points).unwrap()).unwrap();
        assert_eq!(decoded, points);
    }

    #[test]
    fn points_from_before_the_effort_counters_still_decode() {
        // A frame recorded before barrier_iterations/factorizations/
        // simplex_pivots existed: the counters default to zero.
        let legacy = r#"[{"resource_constraint": 0.65,
            "budget": {"resources": {"lut": 0.65, "ff": 0.65, "bram": 0.65,
                                     "dsp": 0.65},
                       "bandwidth": 1},
            "initiation_interval_ms": 1.5, "average_utilization": 0.5,
            "spreading": 6, "solve_seconds": 0.01, "relaxation_gap": 0.02,
            "bb_nodes": 9, "dropped_cus": 0, "warm_start": "ii"}]"#;
        let decoded = decode_points(legacy).unwrap();
        let point = decoded[0].as_ref().unwrap();
        assert_eq!(point.bb_nodes, 9);
        assert_eq!(point.barrier_iterations, 0);
        assert_eq!(point.factorizations, 0);
        assert_eq!(point.simplex_pivots, 0);
        // The same frame predates the reallocation fields too: zero movement.
        assert_eq!(point.moved_cus, 0);
        assert_eq!(point.migration_cost, 0.0);
    }

    #[test]
    fn groups_from_before_reallocation_decode_with_neutral_scales() {
        let legacy = r#"{"name": "fleet",
            "groups": [{"device": {"name": "vu9p",
                                   "capacity": {"lut": 1182240, "ff": 2364480,
                                                "bram": 2160, "dsp": 6840},
                                   "dram_bandwidth_gbps": 76.8},
                        "count": 2}]}"#;
        let doc = Json::parse(legacy).unwrap();
        let platform = platform_from_json(&doc).unwrap();
        assert_eq!(platform.group(0).wcet_scale(), 1.0);
        assert_eq!(platform.group(0).budget_scale(), 1.0);
    }

    #[test]
    fn scaled_groups_round_trip_and_bad_scales_are_rejected() {
        let platform = HeterogeneousPlatform::new(
            "mixed fleet",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(FpgaDevice::ku115(), 2)
                    .with_wcet_scale(1.0 + 0.1 + 0.2)
                    .with_budget_scale(0.7 + 0.1),
            ],
        );
        let encoded = platform_to_json(&platform).unwrap().to_string();
        // Neutral groups stay off the wire; scaled groups ride it.
        assert!(!encoded.contains("\"budget_scale\":1"));
        assert!(encoded.contains("wcet_scale"));
        let decoded = platform_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.group(0).wcet_scale(), 1.0);
        assert_eq!(decoded.group(0).budget_scale(), 1.0);
        assert_eq!(
            decoded.group(1).wcet_scale().to_bits(),
            (1.0f64 + 0.1 + 0.2).to_bits()
        );
        assert_eq!(
            decoded.group(1).budget_scale().to_bits(),
            (0.7f64 + 0.1).to_bits()
        );

        let bad = r#"{"name": "fleet",
            "groups": [{"device": {"name": "vu9p",
                                   "capacity": {"lut": 1, "ff": 1,
                                                "bram": 1, "dsp": 1},
                                   "dram_bandwidth_gbps": 1},
                        "count": 1, "wcet_scale": 0.5}]}"#;
        assert!(matches!(
            platform_from_json(&Json::parse(bad).unwrap()),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn nan_is_rejected_on_encode() {
        let mut point = SweepPoint {
            resource_constraint: 0.65,
            budget: ResourceBudget::uniform(0.65),
            initiation_interval_ms: f64::NAN,
            average_utilization: 0.5,
            spreading: 6.0,
            solve_seconds: 0.0,
            relaxation_gap: 0.0,
            bb_nodes: 0,
            barrier_iterations: 0,
            factorizations: 0,
            simplex_pivots: 0,
            dropped_cus: 0,
            moved_cus: 0,
            migration_cost: 0.0,
            warm_start: WarmStartReport::default(),
        };
        assert!(matches!(
            point_to_json(&point),
            Err(WireError::NonFinite("initiation_interval_ms"))
        ));
        point.initiation_interval_ms = f64::INFINITY;
        assert!(point_to_json(&point).is_err());
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        assert!(matches!(decode_grid("{nope"), Err(WireError::Parse(_))));
        assert!(matches!(decode_grid("42"), Err(WireError::Schema(_))));
        assert!(matches!(
            decode_grid(r#"{"cases":[],"platforms":[],"budgets":[],"backends":[]}"#),
            Err(WireError::Invalid(_))
        ));
        assert!(matches!(
            decode_unit(r#"{"series":0,"start":5,"end":5}"#),
            Err(WireError::Invalid(_))
        ));
        assert!(matches!(
            decode_unit(r#"{"series":0,"start":-1,"end":5}"#),
            Err(WireError::Schema(_))
        ));
        // Unknown variant tags.
        let mut grid_doc = grid_to_json(&sample_grid()).unwrap();
        if let Json::Obj(pairs) = &mut grid_doc {
            for (key, value) in pairs.iter_mut() {
                if key == "backends" {
                    *value = Json::Arr(vec![Json::obj(vec![
                        ("kind", Json::str("quantum")),
                        ("label", Json::str("Q")),
                    ])]);
                }
            }
        }
        assert!(matches!(
            grid_from_json(&grid_doc),
            Err(WireError::Schema(_))
        ));
        // Out-of-range budget fraction.
        assert!(matches!(
            budget_from_json(&Json::obj(vec![
                (
                    "resources",
                    Json::obj(vec![
                        ("lut", Json::Num(0.5)),
                        ("ff", Json::Num(0.5)),
                        ("bram", Json::Num(1.5)),
                        ("dsp", Json::Num(0.5)),
                    ])
                ),
                ("bandwidth", Json::Num(0.9)),
            ])),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn errors_display_their_context() {
        assert!(WireError::Parse("x".into()).to_string().contains("JSON"));
        assert!(WireError::Schema("missing field 'kind'".into())
            .to_string()
            .contains("kind"));
        assert!(WireError::NonFinite("spreading")
            .to_string()
            .contains("spreading"));
    }
}
