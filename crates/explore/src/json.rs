//! A minimal JSON document model with a parser and a compact writer.
//!
//! The vendored serde stub intentionally provides no runtime
//! (de)serialization (see `vendor/serde`), so the wire format of the
//! multi-process sweep dispatcher is built on this hand-rolled module
//! instead. It implements exactly what the transport needs:
//!
//! * [`Json`] — an ordered document tree (object keys keep insertion order,
//!   so encoding is deterministic).
//! * [`Json::parse`] — a strict RFC 8259 parser with a recursion-depth cap,
//!   safe to point at bytes from a crashed or adversarial worker.
//! * `Json::to_string` (via [`std::fmt::Display`]) — a compact single-line writer whose output never
//!   contains a raw newline, which is what makes JSON-lines framing sound.
//!
//! Numbers are `f64` and are written in Rust's shortest-round-trip notation,
//! so `parse(write(x))` reproduces every finite float bit-for-bit — the
//! property the byte-identical sharded-sweep guarantee rests on. Non-finite
//! numbers are unrepresentable in JSON; the writer maps them to `null`
//! (matching [`crate::export`]) and the wire codec rejects them before they
//! ever reach a document.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deeper documents error instead
/// of overflowing the stack; the dispatcher protocol nests a handful of
/// levels at most.
const MAX_DEPTH: usize = 128;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order so encoding is deterministic.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`]: a message plus the byte offset it
/// occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a nonnegative integer, if it is a number with no
    /// fractional part that fits `usize` without precision loss.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v)
                if v.is_finite() && *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) =>
            {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// content is not.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, excessive nesting, or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.fail("trailing content after the document"));
        }
        Ok(value)
    }

    /// Writes the value as compact single-line JSON (no raw newlines, so one
    /// document fits one JSON-lines frame). Non-finite numbers become
    /// `null`, as in [`crate::export`]; the wire codec never produces them.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// JSON string literal with the escapes required by RFC 8259.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.fail("raw control character in string")),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = match self.peek() {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{0008}',
            Some(b'f') => '\u{000c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            _ => return Err(self.fail("invalid escape sequence")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: require a low surrogate right after.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.fail("invalid surrogate pair"));
                }
            }
            return Err(self.fail("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&high) {
            return Err(self.fail("unpaired low surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.fail("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.fail("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while let Some(b'0'..=b'9') = self.peek() {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("digit required after decimal point"));
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("digit required in exponent"));
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("a number token is always ASCII");
        let value: f64 = text
            .parse()
            .map_err(|_| self.fail(format!("unparseable number '{text}'")))?;
        if !value.is_finite() {
            return Err(self.fail(format!("number '{text}' overflows f64")));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1e300),
            Json::Num(5e-324), // smallest subnormal
            Json::Num(0.1 + 0.2),
            Json::str("héllo \"quoted\"\nline\t\\"),
            Json::str(""),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        // Shortest-round-trip Display plus exact parse: bits must survive.
        for bits in [
            0x3FB999999999999Au64, // 0.1
            0x3FF0000000000001,    // 1.0 + ulp
            0x7FEFFFFFFFFFFFFF,    // f64::MAX
            0x0000000000000001,    // smallest subnormal
            0x8000000000000000,    // -0.0
        ] {
            let v = f64::from_bits(bits);
            let Json::Num(back) = roundtrip(&Json::Num(v)) else {
                panic!("number expected");
            };
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn containers_round_trip_and_keep_order() {
        let doc = Json::obj(vec![
            ("zeta", Json::Num(1.0)),
            ("alpha", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            (
                "nested",
                Json::obj(vec![("k", Json::str("v")), ("n", Json::Num(2.5))]),
            ),
        ]);
        assert_eq!(roundtrip(&doc), doc);
        // Keys keep insertion order, so encoding is deterministic.
        assert_eq!(
            doc.to_string(),
            r#"{"zeta":1,"alpha":[null,true],"nested":{"k":"v","n":2.5}}"#
        );
    }

    #[test]
    fn output_is_single_line() {
        let doc = Json::obj(vec![("text", Json::str("line1\nline2"))]);
        assert!(!doc.to_string().contains('\n'));
        assert_eq!(roundtrip(&doc), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\u0041\" , { } ] } ").unwrap();
        assert_eq!(
            doc,
            Json::obj(vec![(
                "a",
                Json::Arr(vec![Json::Num(1.0), Json::str("éA"), Json::Obj(vec![])])
            )])
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
    }

    #[test]
    fn accessors_match_shapes() {
        let doc = Json::obj(vec![
            ("n", Json::Num(7.0)),
            ("s", Json::str("x")),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::Num(1.0)])),
        ]);
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("missing"), None);
        // Type mismatches come back None instead of panicking.
        assert_eq!(doc.get("s").unwrap().as_f64(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(2f64.powi(54)).as_usize(), None);
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "-",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\ud800\"",
            "[1] trailing",
            "NaN",
            "Infinity",
            "1e999",
            "{\"a\":1,}",
            "\u{0007}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Nesting bomb: deep but bounded error, no stack overflow.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
