//! Parallel design-space exploration for multi-FPGA allocation.
//!
//! The paper's point (Sec. 3.2, Figs. 2–5) is that the GP+A heuristic makes
//! sweeping the design space — resource constraints, FPGA counts, solver
//! configurations — *practical*. This crate promotes that exploration into a
//! first-class subsystem on top of the solvers in [`mfa_alloc`]:
//!
//! * [`SweepGrid`] — a declarative grid over four axes: case × platform ×
//!   budget × solver backend. Each (case, platform point, backend)
//!   combination is one *series*; the budget axis provides the points of
//!   that series. The platform axis mixes plain FPGA counts with explicit
//!   [`PlatformSpec`] points (heterogeneous fleets of device groups); the
//!   budget axis mixes the paper's uniform "resource constraint %" with full
//!   per-resource [`BudgetSpec`] points carrying independent
//!   LUT/FF/BRAM/DSP/bandwidth fractions.
//! * [`run_sweep`] — a multi-threaded executor built on [`std::thread::scope`]
//!   with chunked work distribution. Results are assembled in grid order, so
//!   the output is deterministic and identical to the serial path regardless
//!   of thread count or scheduling.
//! * [`WarmStartCache`] — within a chunk of neighbouring budget points, each
//!   GP+A solve is warm-started from the nearest already-solved point under
//!   the [`budget_distance`] metric: the continuous relaxation narrows its
//!   bisection bracket and the discretization branch-and-bound is seeded
//!   with an incumbent. Warm starts are verified before use and always reach
//!   the same initiation interval as a cold solve; when several integer
//!   designs tie on II, the warm-started search may return the neighbour's
//!   design (disable [`ExecutorOptions::warm_start`] for bit-identical
//!   agreement with the cold serial sweeps).
//! * [`export`] — JSON and CSV serialization of swept series for plotting.
//! * [`validate`] — cross-checks a sample of swept designs against the
//!   [`mfa_sim`] discrete-event simulator.
//!
//! The single-threaded sweep functions in [`mfa_alloc::explore`] remain the
//! stable minimal API; both they and this engine drive one
//! [`mfa_alloc::solver::SolveRequest`] per point — same backends, same
//! [`mfa_alloc::solver::SkipPolicy`] — so both produce identical series for
//! identical inputs. The grid carries the request riders: a
//! [`SweepGridBuilder::skip_policy`] (strict sweeps treat unplaceable points
//! and missed deadlines as errors) and a
//! [`SweepGridBuilder::point_deadline_seconds`] wall-clock cap per point.
//!
//! # Example
//!
//! ```
//! use mfa_alloc::cases::PaperCase;
//! use mfa_alloc::gpa::GpaOptions;
//! use mfa_explore::{constraint_grid, run_sweep, CaseSpec, ExecutorOptions, SolverSpec, SweepGrid};
//!
//! # fn main() -> Result<(), mfa_explore::ExploreError> {
//! let grid = SweepGrid::builder()
//!     .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
//!     .fpga_counts([2])
//!     .constraints(constraint_grid(0.60, 0.80, 3)?)
//!     .backend(SolverSpec::gpa(GpaOptions::fast()))
//!     .build()?;
//! let series = run_sweep(&grid, &ExecutorOptions::default())?;
//! assert_eq!(series.len(), 1);
//! assert!(!series[0].points.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod executor;
pub mod export;
pub mod figures;
pub mod frontier;
mod grid;
pub mod json;
pub mod store;
pub mod validate;
pub mod wire;

pub use cache::{budget_distance, WarmStartCache, DEFAULT_CACHE_CAPACITY};
pub use error::ExploreError;
pub use executor::{
    assemble_series, compute_unit, compute_unit_hinted, plan_units, run_sweep, run_sweep_stored,
    zero_chunk_diagnostics, zero_timing, ExecutorOptions, SweepSeries, UnitOutput, WorkUnit,
};
pub use figures::FigureSpec;
pub use frontier::{frontier_to_csv, frontier_to_json, run_frontier, FrontierPoint, FrontierSpec};
pub use grid::{
    constraint_grid, BudgetSpec, CaseSpec, PlatformSpec, SolverSpec, SweepGrid, SweepGridBuilder,
};
pub use store::{
    GcReport, ResultStore, StoreEntry, StoreRunReport, StoreStats, SweepStore, STORE_VERSION,
};

// The point type is shared with the serial sweeps in `mfa_alloc::explore`.
pub use mfa_alloc::explore::SweepPoint;
