//! The sweep grid: cases × platforms × budgets × backends.
//!
//! The platform axis accepts both plain FPGA counts (re-parameterizing the
//! case's base platform, as in the paper's figures) and explicit
//! — possibly heterogeneous — [`HeterogeneousPlatform`] specs; the budget
//! axis accepts both the paper's uniform "resource constraint %" points and
//! full per-resource [`ResourceBudget`] points with independent
//! LUT/FF/BRAM/DSP/bandwidth fractions.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::ExactOptions;
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::solver::{Backend, SkipPolicy};
use mfa_alloc::AllocationProblem;
use mfa_platform::{HeterogeneousPlatform, ResourceBudget};

use crate::ExploreError;

/// One point of the grid's platform axis.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformSpec {
    /// Re-parameterize the case's base platform to `n` FPGAs of its
    /// reference device (the classic "FPGA count" axis of Figs. 3–5).
    FpgaCount(usize),
    /// Swap in an explicit platform — typically a heterogeneous fleet of
    /// device groups.
    Platform {
        /// Label used in series identifiers and exports.
        label: String,
        /// The platform each point of the series runs on.
        platform: HeterogeneousPlatform,
    },
}

impl PlatformSpec {
    /// An explicit platform point labeled by the platform's own name.
    pub fn platform(platform: HeterogeneousPlatform) -> Self {
        PlatformSpec::Platform {
            label: platform.name().to_owned(),
            platform,
        }
    }

    /// An explicit platform point with a custom label.
    pub fn platform_labeled(label: impl Into<String>, platform: HeterogeneousPlatform) -> Self {
        PlatformSpec::Platform {
            label: label.into(),
            platform,
        }
    }

    /// The label used in series identifiers and exports.
    pub fn label(&self) -> String {
        match self {
            PlatformSpec::FpgaCount(n) => format!("{n} FPGAs"),
            PlatformSpec::Platform { label, .. } => label.clone(),
        }
    }

    /// Total FPGA count of the point.
    pub fn num_fpgas(&self) -> usize {
        match self {
            PlatformSpec::FpgaCount(n) => *n,
            PlatformSpec::Platform { platform, .. } => platform.num_fpgas(),
        }
    }

    /// Applies the point to a case's base problem.
    pub(crate) fn apply(&self, base: &AllocationProblem) -> AllocationProblem {
        match self {
            PlatformSpec::FpgaCount(n) => base.with_num_fpgas(*n),
            PlatformSpec::Platform { platform, .. } => base.with_platform(platform.clone()),
        }
    }
}

/// One point of the grid's budget axis.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetSpec {
    /// The paper's uniform "resource constraint %": the fraction applies to
    /// every resource class, the bandwidth cap stays at the case's base.
    Uniform(f64),
    /// A full per-resource budget: independent LUT/FF/BRAM/DSP fractions
    /// plus a bandwidth fraction.
    PerResource(ResourceBudget),
}

impl BudgetSpec {
    /// Scalar key of the point: the uniform fraction, or the largest
    /// per-class fraction of a per-resource budget. Exports and warm-start
    /// bookkeeping use the full budget; this scalar only orders and labels
    /// points.
    pub fn scalar(&self) -> f64 {
        match self {
            BudgetSpec::Uniform(fraction) => *fraction,
            BudgetSpec::PerResource(budget) => budget.resource_fraction().max_component(),
        }
    }

    /// The full budget the point solves under, given a case's base problem
    /// (a uniform point inherits the base bandwidth cap).
    pub fn budget(&self, base: &AllocationProblem) -> ResourceBudget {
        match self {
            BudgetSpec::Uniform(fraction) => ResourceBudget::new(
                mfa_platform::ResourceVec::uniform(*fraction),
                base.budget().bandwidth_fraction(),
            ),
            BudgetSpec::PerResource(budget) => *budget,
        }
    }

    /// Applies the point to an (already platform-adjusted) problem.
    pub(crate) fn apply(&self, problem: &AllocationProblem) -> AllocationProblem {
        problem.with_budget(self.budget(problem))
    }
}

/// One application case to sweep: a label plus a base [`AllocationProblem`]
/// whose FPGA count and resource constraint the grid re-parameterizes per
/// point. Kernels, platform and goal weights come from the base problem.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    label: String,
    base: AllocationProblem,
}

impl CaseSpec {
    /// Creates a case from a label and a base problem.
    pub fn new(label: impl Into<String>, base: AllocationProblem) -> Self {
        CaseSpec {
            label: label.into(),
            base,
        }
    }

    /// The case label used in series identifiers and exports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The base problem the grid re-parameterizes per point (used by the
    /// wire codec to ship cases to worker processes).
    pub fn base(&self) -> &AllocationProblem {
        &self.base
    }

    /// Builds one of the paper's three representative cases (Table 4).
    pub fn from_paper(case: PaperCase) -> Self {
        let (_, hi) = case.constraint_range();
        let base = case
            .problem(hi)
            .expect("the paper's cases are well-formed by construction");
        CaseSpec::new(case.label(), base)
    }

    /// The problem instance of one grid point on the classic axes (FPGA
    /// count × uniform constraint).
    pub fn problem(&self, num_fpgas: usize, resource_constraint: f64) -> AllocationProblem {
        self.problem_at(
            &PlatformSpec::FpgaCount(num_fpgas),
            &BudgetSpec::Uniform(resource_constraint),
        )
    }

    /// The problem instance of one grid point on the generalized axes.
    pub fn problem_at(&self, platform: &PlatformSpec, budget: &BudgetSpec) -> AllocationProblem {
        budget.apply(&platform.apply(&self.base))
    }
}

/// A solver backend on the grid's fourth axis.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverSpec {
    /// The GP+A heuristic (Sec. 3.2).
    Gpa {
        /// Label used in series identifiers and exports.
        label: String,
        /// Heuristic options.
        options: GpaOptions,
    },
    /// The exact MINLP (Eqs. 5–10).
    Exact {
        /// Label used in series identifiers and exports.
        label: String,
        /// Exact-solver options (mode, budget, symmetry breaking).
        options: ExactOptions,
    },
}

impl SolverSpec {
    /// GP+A backend with the conventional "GP+A" label.
    pub fn gpa(options: GpaOptions) -> Self {
        SolverSpec::gpa_labeled("GP+A", options)
    }

    /// GP+A backend with a custom label (e.g. one per `T` value in Fig. 2).
    pub fn gpa_labeled(label: impl Into<String>, options: GpaOptions) -> Self {
        SolverSpec::Gpa {
            label: label.into(),
            options,
        }
    }

    /// Exact backend labeled by its mode, matching the paper's figure keys:
    /// "MINLP" for `β = 0`, "MINLP+G" with spreading.
    pub fn exact(options: ExactOptions) -> Self {
        let label = options.mode.label();
        SolverSpec::exact_labeled(label, options)
    }

    /// Exact backend with a custom label.
    pub fn exact_labeled(label: impl Into<String>, options: ExactOptions) -> Self {
        SolverSpec::Exact {
            label: label.into(),
            options,
        }
    }

    /// The backend label used in series identifiers and exports.
    pub fn label(&self) -> &str {
        match self {
            SolverSpec::Gpa { label, .. } | SolverSpec::Exact { label, .. } => label,
        }
    }

    /// The [`Backend`] a point of this series is solved with.
    pub fn to_backend(&self) -> Backend {
        match self {
            SolverSpec::Gpa { options, .. } => Backend::gpa_with(options.clone()),
            SolverSpec::Exact { options, .. } => Backend::exact_with(options.clone()),
        }
    }
}

/// A declarative sweep grid. Build with [`SweepGrid::builder`]; run with
/// [`crate::run_sweep`]. Series are enumerated case-major, then platform
/// point, then backend; points within a series follow the budget axis order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    pub(crate) cases: Vec<CaseSpec>,
    pub(crate) platforms: Vec<PlatformSpec>,
    pub(crate) budgets: Vec<BudgetSpec>,
    pub(crate) backends: Vec<SolverSpec>,
    pub(crate) skip_policy: SkipPolicy,
    pub(crate) point_deadline_seconds: Option<f64>,
}

impl SweepGrid {
    /// Starts building a grid.
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder::default()
    }

    /// Number of series: cases × platform points × backends.
    pub fn num_series(&self) -> usize {
        self.cases.len() * self.platforms.len() * self.backends.len()
    }

    /// Number of grid points: series × budget points.
    pub fn num_points(&self) -> usize {
        self.num_series() * self.budgets.len()
    }

    /// The budget axis.
    pub fn budgets(&self) -> &[BudgetSpec] {
        &self.budgets
    }

    /// The platform axis.
    pub fn platforms(&self) -> &[PlatformSpec] {
        &self.platforms
    }

    /// The case axis.
    pub fn cases(&self) -> &[CaseSpec] {
        &self.cases
    }

    /// The solver-backend axis.
    pub fn backends(&self) -> &[SolverSpec] {
        &self.backends
    }

    /// The skip policy every point request carries (default
    /// [`SkipPolicy::Lenient`], matching the paper's figures which simply
    /// omit unsolvable points).
    pub fn skip_policy(&self) -> SkipPolicy {
        self.skip_policy
    }

    /// The per-point wall-clock deadline in seconds, if any. Each point
    /// request gets `Deadline::within` this budget; under the lenient skip
    /// policy an exhausted deadline skips the point, under the strict policy
    /// it aborts the sweep.
    pub fn point_deadline_seconds(&self) -> Option<f64> {
        self.point_deadline_seconds
    }

    /// Decomposes a series index into (case, platform, backend) indices.
    pub(crate) fn series_key(&self, series: usize) -> (usize, usize, usize) {
        let backends = self.backends.len();
        let platforms = self.platforms.len();
        (
            series / (platforms * backends),
            (series / backends) % platforms,
            series % backends,
        )
    }
}

/// Builder for [`SweepGrid`]; every axis must end up non-empty.
#[derive(Debug, Clone, Default)]
pub struct SweepGridBuilder {
    cases: Vec<CaseSpec>,
    platforms: Vec<PlatformSpec>,
    budgets: Vec<BudgetSpec>,
    backends: Vec<SolverSpec>,
    skip_policy: SkipPolicy,
    point_deadline_seconds: Option<f64>,
}

impl SweepGridBuilder {
    /// Adds one case.
    #[must_use]
    pub fn case(mut self, case: CaseSpec) -> Self {
        self.cases.push(case);
        self
    }

    /// Adds several cases.
    #[must_use]
    pub fn cases(mut self, cases: impl IntoIterator<Item = CaseSpec>) -> Self {
        self.cases.extend(cases);
        self
    }

    /// Adds FPGA counts to the platform axis (each re-parameterizes the
    /// case's base platform, as in the paper's figures).
    #[must_use]
    pub fn fpga_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.platforms
            .extend(counts.into_iter().map(PlatformSpec::FpgaCount));
        self
    }

    /// Adds one explicit platform point (e.g. a heterogeneous fleet).
    #[must_use]
    pub fn platform(mut self, platform: PlatformSpec) -> Self {
        self.platforms.push(platform);
        self
    }

    /// Adds several explicit platform points.
    #[must_use]
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = PlatformSpec>) -> Self {
        self.platforms.extend(platforms);
        self
    }

    /// Adds uniform resource-constraint points (fractions in `(0, 1]`) to
    /// the budget axis.
    #[must_use]
    pub fn constraints(mut self, constraints: impl IntoIterator<Item = f64>) -> Self {
        self.budgets
            .extend(constraints.into_iter().map(BudgetSpec::Uniform));
        self
    }

    /// Adds one per-resource budget point (independent LUT/FF/BRAM/DSP
    /// fractions plus a bandwidth cap).
    #[must_use]
    pub fn budget(mut self, budget: ResourceBudget) -> Self {
        self.budgets.push(BudgetSpec::PerResource(budget));
        self
    }

    /// Adds several per-resource budget points.
    #[must_use]
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = ResourceBudget>) -> Self {
        self.budgets
            .extend(budgets.into_iter().map(BudgetSpec::PerResource));
        self
    }

    /// Adds one solver backend.
    #[must_use]
    pub fn backend(mut self, backend: SolverSpec) -> Self {
        self.backends.push(backend);
        self
    }

    /// Adds several solver backends.
    #[must_use]
    pub fn backends(mut self, backends: impl IntoIterator<Item = SolverSpec>) -> Self {
        self.backends.extend(backends);
        self
    }

    /// Sets the skip policy every point request carries (default
    /// [`SkipPolicy::Lenient`]). Strict sweeps treat unplaceable points,
    /// exhausted node budgets and missed deadlines as errors instead of
    /// skipped points.
    #[must_use]
    pub fn skip_policy(mut self, policy: SkipPolicy) -> Self {
        self.skip_policy = policy;
        self
    }

    /// Caps each point's solve at a wall-clock budget in seconds (see
    /// [`SweepGrid::point_deadline_seconds`]).
    #[must_use]
    pub fn point_deadline_seconds(mut self, seconds: f64) -> Self {
        self.point_deadline_seconds = Some(seconds);
        self
    }

    /// Validates the axes and builds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidGrid`] when an axis is empty, an FPGA
    /// count is zero, or a uniform constraint is not a fraction in `(0, 1]`
    /// (per-resource budget points are validated by [`ResourceBudget`]'s own
    /// constructors), and [`ExploreError::InvalidOptions`] when the per-point
    /// deadline is NaN, negative, infinite, or too large for a
    /// [`std::time::Duration`].
    pub fn build(self) -> Result<SweepGrid, ExploreError> {
        if self.cases.is_empty() {
            return Err(ExploreError::InvalidGrid("no cases on the grid".into()));
        }
        if self.platforms.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no platform points (FPGA counts or platforms) on the grid".into(),
            ));
        }
        if self.budgets.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no budget points (constraints or budgets) on the grid".into(),
            ));
        }
        if self.backends.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no solver backends on the grid".into(),
            ));
        }
        if let Some(bad) = self.platforms.iter().find_map(|p| match p {
            PlatformSpec::FpgaCount(0) => Some(0usize),
            _ => None,
        }) {
            return Err(ExploreError::InvalidGrid(format!(
                "FPGA count must be at least 1, got {bad}"
            )));
        }
        if let Some(bad) = self.budgets.iter().find_map(|b| match b {
            BudgetSpec::Uniform(c) if !c.is_finite() || *c <= 0.0 || *c > 1.0 => Some(*c),
            _ => None,
        }) {
            return Err(ExploreError::InvalidGrid(format!(
                "resource constraints must be fractions in (0, 1], got {bad}"
            )));
        }
        if let Some(seconds) = self.point_deadline_seconds {
            // The executor turns this into a `Deadline` per point; NaN,
            // negative, infinite *and* Duration-overflowing (huge finite)
            // values would all panic inside `Duration::from_secs_f64` there,
            // so every one of them must die here as a typed error. The
            // deadline is an executor rider, not a grid axis, hence
            // `InvalidOptions` rather than `InvalidGrid`.
            if mfa_alloc::Deadline::within_seconds(seconds).is_err() {
                return Err(ExploreError::InvalidOptions(format!(
                    "the per-point deadline must be a non-negative number of \
                     seconds representable as a Duration, got {seconds}"
                )));
            }
        }
        Ok(SweepGrid {
            cases: self.cases,
            platforms: self.platforms,
            budgets: self.budgets,
            backends: self.backends,
            skip_policy: self.skip_policy,
            point_deadline_seconds: self.point_deadline_seconds,
        })
    }
}

/// `count` evenly spaced constraint values between `lo` and `hi` inclusive —
/// the [`mfa_alloc::explore::constraint_grid`] shape, but degenerate inputs
/// surface as [`ExploreError::InvalidGrid`] instead of a panic.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] when `count < 2`, the bounds are not
/// finite fractions in `(0, 1]`, or `hi ≤ lo`.
pub fn constraint_grid(lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, ExploreError> {
    if count < 2 {
        return Err(ExploreError::InvalidGrid(format!(
            "a constraint grid needs at least two points, got {count}"
        )));
    }
    if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi <= 1.0) {
        return Err(ExploreError::InvalidGrid(format!(
            "constraint bounds must be finite fractions in (0, 1], got [{lo}, {hi}]"
        )));
    }
    if hi <= lo {
        return Err(ExploreError::InvalidGrid(format!(
            "constraint bounds must satisfy lo < hi, got [{lo}, {hi}]"
        )));
    }
    Ok((0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfa_alloc::exact::ExactMode;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([2, 4, 8])
            .constraints([0.6, 0.7])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::exact(ExactOptions::default()))
            .build()
            .unwrap()
    }

    #[test]
    fn series_enumeration_is_case_major_and_complete() {
        let grid = tiny_grid();
        assert_eq!(grid.num_series(), 2 * 3 * 2);
        assert_eq!(grid.num_points(), 2 * 3 * 2 * 2);
        assert_eq!(grid.series_key(0), (0, 0, 0));
        assert_eq!(grid.series_key(1), (0, 0, 1));
        assert_eq!(grid.series_key(2), (0, 1, 0));
        assert_eq!(grid.series_key(6), (1, 0, 0));
        assert_eq!(grid.series_key(11), (1, 2, 1));
    }

    #[test]
    fn malformed_point_deadlines_are_typed_errors() {
        // Regression: 1e19 seconds is finite and non-negative, so it used to
        // pass validation — and then panic inside `Duration::from_secs_f64`
        // when the executor built the per-point deadline. Every malformed
        // budget must be an `InvalidOptions` error at build time instead.
        for bad in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY, 1e19] {
            let result = SweepGrid::builder()
                .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
                .fpga_counts([2])
                .constraints([0.7])
                .backend(SolverSpec::gpa(GpaOptions::fast()))
                .point_deadline_seconds(bad)
                .build();
            assert!(
                matches!(result, Err(ExploreError::InvalidOptions(_))),
                "deadline {bad} must be rejected, got {result:?}"
            );
        }
        // Zero stays valid: an already-exhausted deadline is how strict
        // sweeps probe the deadline paths deterministically.
        assert!(SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .fpga_counts([2])
            .constraints([0.7])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .point_deadline_seconds(0.0)
            .build()
            .is_ok());
    }

    #[test]
    fn backend_labels_follow_the_paper() {
        assert_eq!(SolverSpec::gpa(GpaOptions::default()).label(), "GP+A");
        assert_eq!(SolverSpec::exact(ExactOptions::default()).label(), "MINLP");
        let g = SolverSpec::exact(ExactOptions {
            mode: ExactMode::IiAndSpreading,
            ..ExactOptions::default()
        });
        assert_eq!(g.label(), "MINLP+G");
        assert_eq!(
            SolverSpec::gpa_labeled("T=5%", GpaOptions::fast()).label(),
            "T=5%"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        let base = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        let backend = || SolverSpec::gpa(GpaOptions::fast());
        assert!(matches!(
            SweepGrid::builder()
                .fpga_counts([2])
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([2])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([2])
                .constraints([0.6])
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([0])
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                SweepGrid::builder()
                    .case(base.clone())
                    .fpga_counts([2])
                    .constraints([bad])
                    .backend(backend())
                    .build(),
                Err(ExploreError::InvalidGrid(_))
            ));
        }
    }

    #[test]
    fn constraint_grid_matches_the_core_shape() {
        let ours = constraint_grid(0.5, 0.9, 5).unwrap();
        let core = mfa_alloc::explore::constraint_grid(0.5, 0.9, 5);
        assert_eq!(ours, core);
    }

    #[test]
    fn degenerate_constraint_grids_error_instead_of_panicking() {
        assert!(constraint_grid(0.5, 0.5, 1).is_err());
        assert!(constraint_grid(0.5, 0.5, 5).is_err());
        assert!(constraint_grid(0.9, 0.5, 5).is_err());
        assert!(constraint_grid(0.5, 0.9, 0).is_err());
        assert!(constraint_grid(0.5, 0.9, 1).is_err());
        assert!(constraint_grid(f64::NAN, 0.9, 3).is_err());
        assert!(constraint_grid(0.5, f64::INFINITY, 3).is_err());
        assert!(constraint_grid(-0.1, 0.9, 3).is_err());
        assert!(constraint_grid(0.5, 1.1, 3).is_err());
    }

    #[test]
    fn case_spec_reparameterizes_the_base_problem() {
        let case = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        assert_eq!(case.label(), "Alex-16 on 2 FPGAs");
        let p = case.problem(4, 0.6);
        assert_eq!(p.num_fpgas(), 4);
        let q = case.problem(2, 0.8);
        assert_eq!(q.num_fpgas(), 2);
        assert_eq!(p.num_kernels(), q.num_kernels());
    }

    fn mixed_fleet() -> mfa_platform::HeterogeneousPlatform {
        use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
        HeterogeneousPlatform::new(
            "2×VU9P + 2×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 2),
                DeviceGroup::new(FpgaDevice::ku115(), 2),
            ],
        )
    }

    #[test]
    fn platform_axis_mixes_counts_and_heterogeneous_fleets() {
        let count = PlatformSpec::FpgaCount(4);
        assert_eq!(count.label(), "4 FPGAs");
        assert_eq!(count.num_fpgas(), 4);
        let fleet = PlatformSpec::platform(mixed_fleet());
        assert_eq!(fleet.label(), "2×VU9P + 2×KU115");
        assert_eq!(fleet.num_fpgas(), 4);
        let labeled = PlatformSpec::platform_labeled("mixed", mixed_fleet());
        assert_eq!(labeled.label(), "mixed");

        let case = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        let p = case.problem_at(&fleet, &BudgetSpec::Uniform(0.7));
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.num_fpgas(), 4);
        assert!((p.budget().resource_fraction().dsp - 0.7).abs() < 1e-12);
    }

    #[test]
    fn budget_axis_mixes_uniform_and_per_resource_points() {
        use mfa_platform::{ResourceBudget, ResourceVec};
        let uniform = BudgetSpec::Uniform(0.65);
        assert_eq!(uniform.scalar(), 0.65);
        let skewed = BudgetSpec::PerResource(ResourceBudget::new(
            ResourceVec::new(0.9, 0.9, 0.5, 0.7),
            0.8,
        ));
        assert_eq!(skewed.scalar(), 0.9);

        let case = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        let p = case.problem_at(&PlatformSpec::FpgaCount(2), &skewed);
        assert!((p.budget().resource_fraction().bram - 0.5).abs() < 1e-12);
        assert!((p.budget().bandwidth_fraction() - 0.8).abs() < 1e-12);

        let grid = SweepGrid::builder()
            .case(case)
            .fpga_counts([2])
            .platform(PlatformSpec::platform(mixed_fleet()))
            .constraints([0.6, 0.7])
            .budget(ResourceBudget::new(
                ResourceVec::new(0.9, 0.9, 0.5, 0.7),
                0.8,
            ))
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .build()
            .unwrap();
        assert_eq!(grid.num_series(), 2);
        assert_eq!(grid.num_points(), 6);
        assert_eq!(grid.budgets().len(), 3);
        assert_eq!(grid.platforms().len(), 2);
    }
}
