//! The sweep grid: cases × FPGA counts × resource constraints × backends.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::AllocationProblem;

use crate::ExploreError;

/// One application case to sweep: a label plus a base [`AllocationProblem`]
/// whose FPGA count and resource constraint the grid re-parameterizes per
/// point. Kernels, platform and goal weights come from the base problem.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    label: String,
    base: AllocationProblem,
}

impl CaseSpec {
    /// Creates a case from a label and a base problem.
    pub fn new(label: impl Into<String>, base: AllocationProblem) -> Self {
        CaseSpec {
            label: label.into(),
            base,
        }
    }

    /// The case label used in series identifiers and exports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Builds one of the paper's three representative cases (Table 4).
    pub fn from_paper(case: PaperCase) -> Self {
        let (_, hi) = case.constraint_range();
        let base = case
            .problem(hi)
            .expect("the paper's cases are well-formed by construction");
        CaseSpec::new(case.label(), base)
    }

    /// The problem instance of one grid point.
    pub fn problem(&self, num_fpgas: usize, resource_constraint: f64) -> AllocationProblem {
        self.base
            .with_num_fpgas(num_fpgas)
            .with_resource_constraint(resource_constraint)
    }
}

/// A solver backend on the grid's fourth axis.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverSpec {
    /// The GP+A heuristic (Sec. 3.2).
    Gpa {
        /// Label used in series identifiers and exports.
        label: String,
        /// Heuristic options.
        options: GpaOptions,
    },
    /// The exact MINLP (Eqs. 5–10).
    Exact {
        /// Label used in series identifiers and exports.
        label: String,
        /// Exact-solver options (mode, budget, symmetry breaking).
        options: ExactOptions,
    },
}

impl SolverSpec {
    /// GP+A backend with the conventional "GP+A" label.
    pub fn gpa(options: GpaOptions) -> Self {
        SolverSpec::gpa_labeled("GP+A", options)
    }

    /// GP+A backend with a custom label (e.g. one per `T` value in Fig. 2).
    pub fn gpa_labeled(label: impl Into<String>, options: GpaOptions) -> Self {
        SolverSpec::Gpa {
            label: label.into(),
            options,
        }
    }

    /// Exact backend labeled by its mode, matching the paper's figure keys:
    /// "MINLP" for `β = 0`, "MINLP+G" with spreading.
    pub fn exact(options: ExactOptions) -> Self {
        let label = match options.mode {
            ExactMode::IiOnly => "MINLP",
            ExactMode::IiAndSpreading => "MINLP+G",
        };
        SolverSpec::exact_labeled(label, options)
    }

    /// Exact backend with a custom label.
    pub fn exact_labeled(label: impl Into<String>, options: ExactOptions) -> Self {
        SolverSpec::Exact {
            label: label.into(),
            options,
        }
    }

    /// The backend label used in series identifiers and exports.
    pub fn label(&self) -> &str {
        match self {
            SolverSpec::Gpa { label, .. } | SolverSpec::Exact { label, .. } => label,
        }
    }
}

/// A declarative sweep grid. Build with [`SweepGrid::builder`]; run with
/// [`crate::run_sweep`]. Series are enumerated case-major, then FPGA count,
/// then backend; points within a series follow the constraint axis order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    pub(crate) cases: Vec<CaseSpec>,
    pub(crate) fpga_counts: Vec<usize>,
    pub(crate) constraints: Vec<f64>,
    pub(crate) backends: Vec<SolverSpec>,
}

impl SweepGrid {
    /// Starts building a grid.
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder::default()
    }

    /// Number of series: cases × FPGA counts × backends.
    pub fn num_series(&self) -> usize {
        self.cases.len() * self.fpga_counts.len() * self.backends.len()
    }

    /// Number of grid points: series × constraints.
    pub fn num_points(&self) -> usize {
        self.num_series() * self.constraints.len()
    }

    /// The constraint axis.
    pub fn constraints(&self) -> &[f64] {
        &self.constraints
    }

    /// Decomposes a series index into (case, FPGA count, backend) indices.
    pub(crate) fn series_key(&self, series: usize) -> (usize, usize, usize) {
        let backends = self.backends.len();
        let fpgas = self.fpga_counts.len();
        (
            series / (fpgas * backends),
            (series / backends) % fpgas,
            series % backends,
        )
    }
}

/// Builder for [`SweepGrid`]; every axis must end up non-empty.
#[derive(Debug, Clone, Default)]
pub struct SweepGridBuilder {
    cases: Vec<CaseSpec>,
    fpga_counts: Vec<usize>,
    constraints: Vec<f64>,
    backends: Vec<SolverSpec>,
}

impl SweepGridBuilder {
    /// Adds one case.
    #[must_use]
    pub fn case(mut self, case: CaseSpec) -> Self {
        self.cases.push(case);
        self
    }

    /// Adds several cases.
    #[must_use]
    pub fn cases(mut self, cases: impl IntoIterator<Item = CaseSpec>) -> Self {
        self.cases.extend(cases);
        self
    }

    /// Adds FPGA counts to sweep.
    #[must_use]
    pub fn fpga_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.fpga_counts.extend(counts);
        self
    }

    /// Adds resource-constraint points (fractions in `(0, 1]`).
    #[must_use]
    pub fn constraints(mut self, constraints: impl IntoIterator<Item = f64>) -> Self {
        self.constraints.extend(constraints);
        self
    }

    /// Adds one solver backend.
    #[must_use]
    pub fn backend(mut self, backend: SolverSpec) -> Self {
        self.backends.push(backend);
        self
    }

    /// Adds several solver backends.
    #[must_use]
    pub fn backends(mut self, backends: impl IntoIterator<Item = SolverSpec>) -> Self {
        self.backends.extend(backends);
        self
    }

    /// Validates the axes and builds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidGrid`] when an axis is empty, an FPGA
    /// count is zero, or a constraint is not a fraction in `(0, 1]`.
    pub fn build(self) -> Result<SweepGrid, ExploreError> {
        if self.cases.is_empty() {
            return Err(ExploreError::InvalidGrid("no cases on the grid".into()));
        }
        if self.fpga_counts.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no FPGA counts on the grid".into(),
            ));
        }
        if self.constraints.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no resource constraints on the grid".into(),
            ));
        }
        if self.backends.is_empty() {
            return Err(ExploreError::InvalidGrid(
                "no solver backends on the grid".into(),
            ));
        }
        if let Some(&bad) = self.fpga_counts.iter().find(|&&f| f == 0) {
            return Err(ExploreError::InvalidGrid(format!(
                "FPGA count must be at least 1, got {bad}"
            )));
        }
        if let Some(&bad) = self
            .constraints
            .iter()
            .find(|&&c| !c.is_finite() || c <= 0.0 || c > 1.0)
        {
            return Err(ExploreError::InvalidGrid(format!(
                "resource constraints must be fractions in (0, 1], got {bad}"
            )));
        }
        Ok(SweepGrid {
            cases: self.cases,
            fpga_counts: self.fpga_counts,
            constraints: self.constraints,
            backends: self.backends,
        })
    }
}

/// `count` evenly spaced constraint values between `lo` and `hi` inclusive —
/// the [`mfa_alloc::explore::constraint_grid`] shape, but degenerate inputs
/// surface as [`ExploreError::InvalidGrid`] instead of a panic.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] when `count < 2`, the bounds are not
/// finite fractions in `(0, 1]`, or `hi ≤ lo`.
pub fn constraint_grid(lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, ExploreError> {
    if count < 2 {
        return Err(ExploreError::InvalidGrid(format!(
            "a constraint grid needs at least two points, got {count}"
        )));
    }
    if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi <= 1.0) {
        return Err(ExploreError::InvalidGrid(format!(
            "constraint bounds must be finite fractions in (0, 1], got [{lo}, {hi}]"
        )));
    }
    if hi <= lo {
        return Err(ExploreError::InvalidGrid(format!(
            "constraint bounds must satisfy lo < hi, got [{lo}, {hi}]"
        )));
    }
    Ok((0..count)
        .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builder()
            .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
            .case(CaseSpec::from_paper(PaperCase::Alex32OnFourFpgas))
            .fpga_counts([2, 4, 8])
            .constraints([0.6, 0.7])
            .backend(SolverSpec::gpa(GpaOptions::fast()))
            .backend(SolverSpec::exact(ExactOptions::default()))
            .build()
            .unwrap()
    }

    #[test]
    fn series_enumeration_is_case_major_and_complete() {
        let grid = tiny_grid();
        assert_eq!(grid.num_series(), 2 * 3 * 2);
        assert_eq!(grid.num_points(), 2 * 3 * 2 * 2);
        assert_eq!(grid.series_key(0), (0, 0, 0));
        assert_eq!(grid.series_key(1), (0, 0, 1));
        assert_eq!(grid.series_key(2), (0, 1, 0));
        assert_eq!(grid.series_key(6), (1, 0, 0));
        assert_eq!(grid.series_key(11), (1, 2, 1));
    }

    #[test]
    fn backend_labels_follow_the_paper() {
        assert_eq!(SolverSpec::gpa(GpaOptions::default()).label(), "GP+A");
        assert_eq!(SolverSpec::exact(ExactOptions::default()).label(), "MINLP");
        let g = SolverSpec::exact(ExactOptions {
            mode: ExactMode::IiAndSpreading,
            ..ExactOptions::default()
        });
        assert_eq!(g.label(), "MINLP+G");
        assert_eq!(
            SolverSpec::gpa_labeled("T=5%", GpaOptions::fast()).label(),
            "T=5%"
        );
    }

    #[test]
    fn empty_axes_are_rejected() {
        let base = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        let backend = || SolverSpec::gpa(GpaOptions::fast());
        assert!(matches!(
            SweepGrid::builder()
                .fpga_counts([2])
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([2])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([2])
                .constraints([0.6])
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        assert!(matches!(
            SweepGrid::builder()
                .case(base.clone())
                .fpga_counts([0])
                .constraints([0.6])
                .backend(backend())
                .build(),
            Err(ExploreError::InvalidGrid(_))
        ));
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                SweepGrid::builder()
                    .case(base.clone())
                    .fpga_counts([2])
                    .constraints([bad])
                    .backend(backend())
                    .build(),
                Err(ExploreError::InvalidGrid(_))
            ));
        }
    }

    #[test]
    fn constraint_grid_matches_the_core_shape() {
        let ours = constraint_grid(0.5, 0.9, 5).unwrap();
        let core = mfa_alloc::explore::constraint_grid(0.5, 0.9, 5);
        assert_eq!(ours, core);
    }

    #[test]
    fn degenerate_constraint_grids_error_instead_of_panicking() {
        assert!(constraint_grid(0.5, 0.5, 1).is_err());
        assert!(constraint_grid(0.5, 0.5, 5).is_err());
        assert!(constraint_grid(0.9, 0.5, 5).is_err());
        assert!(constraint_grid(0.5, 0.9, 0).is_err());
        assert!(constraint_grid(0.5, 0.9, 1).is_err());
        assert!(constraint_grid(f64::NAN, 0.9, 3).is_err());
        assert!(constraint_grid(0.5, f64::INFINITY, 3).is_err());
        assert!(constraint_grid(-0.1, 0.9, 3).is_err());
        assert!(constraint_grid(0.5, 1.1, 3).is_err());
    }

    #[test]
    fn case_spec_reparameterizes_the_base_problem() {
        let case = CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas);
        assert_eq!(case.label(), "Alex-16 on 2 FPGAs");
        let p = case.problem(4, 0.6);
        assert_eq!(p.num_fpgas(), 4);
        let q = case.problem(2, 0.8);
        assert_eq!(q.num_fpgas(), 2);
        assert_eq!(p.num_kernels(), q.num_kernels());
    }
}
