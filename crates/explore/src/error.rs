//! Error type of the exploration engine.

use std::error::Error;
use std::fmt;

use mfa_alloc::AllocError;

/// Error returned by grid construction and the sweep executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// The sweep grid is malformed (empty axis, out-of-range constraint, …).
    InvalidGrid(String),
    /// The executor or dispatcher options are malformed (zero chunk size, …).
    InvalidOptions(String),
    /// A point solver failed in a non-skippable way; the sweep is aborted.
    ///
    /// Skippable conditions (infeasible constraints, unplaceable
    /// discretizations, budget-exhausted MINLP solves without an incumbent)
    /// never surface here — those points are simply absent from the series,
    /// exactly as in the single-threaded sweeps.
    Solver {
        /// Label of the case being swept.
        case: String,
        /// FPGA count of the failing series.
        num_fpgas: usize,
        /// Label of the solver backend.
        backend: String,
        /// Resource constraint of the failing point.
        resource_constraint: f64,
        /// The underlying solver error.
        source: AllocError,
    },
    /// A churn replay inside a reallocation-frontier sweep failed (malformed
    /// event for the evolving problem, or a non-skippable re-solve error).
    Churn(String),
    /// The persistent sweep store failed at the directory level (cannot
    /// create/list the store, cannot commit a segment) or a grid point could
    /// not be canonically encoded for fingerprinting. Damaged store
    /// *contents* never raise this — corrupt entries are counted misses.
    Store(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidGrid(msg) => write!(f, "invalid sweep grid: {msg}"),
            ExploreError::InvalidOptions(msg) => write!(f, "invalid executor options: {msg}"),
            ExploreError::Solver {
                case,
                num_fpgas,
                backend,
                resource_constraint,
                source,
            } => write!(
                f,
                "sweep point failed ({case}, {num_fpgas} FPGAs, {backend}, \
                 constraint {:.1}%): {source}",
                resource_constraint * 100.0
            ),
            ExploreError::Churn(msg) => write!(f, "churn replay failed: {msg}"),
            ExploreError::Store(msg) => write!(f, "sweep store failed: {msg}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Solver { source, .. } => Some(source),
            ExploreError::InvalidGrid(_)
            | ExploreError::InvalidOptions(_)
            | ExploreError::Churn(_)
            | ExploreError::Store(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_cover_variants() {
        let invalid = ExploreError::InvalidGrid("no cases".into());
        assert!(invalid.to_string().contains("no cases"));
        assert!(Error::source(&invalid).is_none());

        let options = ExploreError::InvalidOptions("chunk_size must be at least 1".into());
        assert!(options.to_string().contains("chunk_size"));
        assert!(Error::source(&options).is_none());

        let solver = ExploreError::Solver {
            case: "Alex-16 on 2 FPGAs".into(),
            num_fpgas: 2,
            backend: "GP+A".into(),
            resource_constraint: 0.65,
            source: AllocError::InvalidArgument("boom".into()),
        };
        let text = solver.to_string();
        assert!(text.contains("Alex-16"));
        assert!(text.contains("65.0%"));
        assert!(text.contains("boom"));
        assert!(Error::source(&solver).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExploreError>();
    }
}
