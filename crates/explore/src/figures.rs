//! The paper's figure grids (Figs. 2–5) as reusable [`SweepGrid`] presets.
//!
//! The `dse` example, the golden-file regression tests and the sharded
//! dispatcher tests all sweep the *same* grids; defining them once here is
//! what lets the tests byte-compare serial, threaded and multi-process runs
//! against one committed snapshot without drifting from the example.
//!
//! Quick mode (the CI smoke configuration) deliberately gives the MINLP
//! backends a node budget but **no wall-clock limit**: a time limit makes
//! the explored tree — and therefore the reported incumbent — depend on
//! machine load, which would break the byte-identical golden comparison.
//! The small per-case node caps alone bound quick-mode runtime.

use mfa_alloc::cases::PaperCase;
use mfa_alloc::exact::{ExactMode, ExactOptions};
use mfa_alloc::gpa::GpaOptions;
use mfa_alloc::greedy::GreedyOptions;
use mfa_minlp::SolverOptions;

use crate::grid::{constraint_grid, CaseSpec, SolverSpec, SweepGrid};
use crate::ExploreError;

/// One of the paper's figures: a named grid plus the constraint values its
/// table axis prints.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSpec {
    /// Short name used in export file names (`fig2` … `fig5`).
    pub name: &'static str,
    /// Human-readable title for console tables.
    pub title: String,
    /// The constraint values of the figure's x-axis (used for table rows;
    /// the grid's budget axis carries the same values).
    pub constraints: Vec<f64>,
    /// The sweep grid reproducing the figure's series.
    pub grid: SweepGrid,
}

/// MINLP node/time budgets per figure: small enough to finish, honest about
/// the gap. Quick mode is node-budget-only so the result is independent of
/// machine speed (see the module docs).
fn exact_backends(quick: bool, vgg: bool) -> Vec<SolverSpec> {
    let solver = match (quick, vgg) {
        // Node-only budgets, sized so the whole quick exact sweep stays in
        // the tens of seconds: VGG nodes are an order of magnitude more
        // expensive than the Alex cases'. VGG's plain-MINLP series still
        // exhausts its budget without an incumbent, which keeps the
        // budget-exhausted skip path under test.
        (true, false) => SolverOptions {
            max_nodes: 12,
            time_limit_seconds: None,
            ..SolverOptions::default()
        },
        (true, true) => SolverOptions {
            max_nodes: 4,
            time_limit_seconds: None,
            ..SolverOptions::default()
        },
        (false, false) => SolverOptions::with_budget(2_000, 12.0),
        (false, true) => SolverOptions::with_budget(200, 15.0),
    };
    [ExactMode::IiOnly, ExactMode::IiAndSpreading]
        .into_iter()
        .map(|mode| {
            SolverSpec::exact(ExactOptions {
                mode,
                solver: solver.clone(),
                symmetry_breaking: true,
            })
        })
        .collect()
}

/// Builds Fig. 2 (the greedy `T` parameter on Alex-16): one labeled GP+A
/// backend per `T` value.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] only if the hard-coded axes were
/// edited into an invalid state.
pub fn figure2(quick: bool) -> Result<FigureSpec, ExploreError> {
    let t_values: &[f64] = if quick {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
    };
    let constraints = if quick {
        constraint_grid(0.50, 0.90, 3)?
    } else {
        constraint_grid(0.40, 0.90, 11)?
    };
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .constraints(constraints.iter().copied())
        .backends(t_values.iter().map(|&t| {
            SolverSpec::gpa_labeled(
                format!("T{:.1}%", t * 100.0),
                GpaOptions {
                    greedy: GreedyOptions::with_t_delta(t, 0.01),
                    ..GpaOptions::fast()
                },
            )
        }))
        .build()?;
    Ok(FigureSpec {
        name: "fig2",
        title: "Fig. 2: Alex-16 on 2 FPGAs — II (ms) vs constraint for several T".into(),
        constraints,
        grid,
    })
}

/// Builds one of Figs. 3–5 (GP+A vs MINLP vs MINLP+G on a paper case).
fn method_figure(
    name: &'static str,
    case: PaperCase,
    constraints: Vec<f64>,
    quick: bool,
    vgg: bool,
    exact: bool,
) -> Result<FigureSpec, ExploreError> {
    let mut builder = SweepGrid::builder()
        .case(CaseSpec::from_paper(case))
        .fpga_counts([case.num_fpgas()])
        .constraints(constraints.iter().copied())
        .backend(SolverSpec::gpa(GpaOptions::paper_defaults()));
    if exact {
        builder = builder.backends(exact_backends(quick, vgg));
    }
    Ok(FigureSpec {
        name,
        title: format!("{}: {} — II (ms) by method", name, case.label()),
        constraints,
        grid: builder.build()?,
    })
}

/// Builds Figs. 2–5 in order. `quick` selects the reduced CI grids (which
/// also exercise the infeasible-point skip paths); `exact = false` drops the
/// MINLP/MINLP+G series from Figs. 3–5.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] only if the hard-coded axes were
/// edited into an invalid state.
pub fn paper_figures(quick: bool, exact: bool) -> Result<Vec<FigureSpec>, ExploreError> {
    let mut figures = vec![figure2(quick)?];
    figures.push(method_figure(
        "fig3",
        PaperCase::Alex16OnTwoFpgas,
        if quick {
            // 8 % is infeasible for Alex-16 — exercises the skip path.
            vec![0.08, 0.65, 0.85]
        } else {
            constraint_grid(0.55, 0.85, 7)?
        },
        quick,
        false,
        exact,
    )?);
    figures.push(method_figure(
        "fig4",
        PaperCase::Alex32OnFourFpgas,
        if quick {
            // 30 % cannot host CONV2 (37.6 % DSP) — another skip path.
            vec![0.30, 0.70, 0.75]
        } else {
            constraint_grid(0.65, 0.75, 3)?
        },
        quick,
        false,
        exact,
    )?);
    figures.push(method_figure(
        "fig5",
        PaperCase::VggOnEightFpgas,
        if quick {
            vec![0.61, 0.80]
        } else {
            constraint_grid(0.55, 0.80, 6)?
        },
        quick,
        true,
        exact,
    )?);
    Ok(figures)
}

/// The heterogeneous-platform × per-resource-budget smoke grid the `dse`
/// example runs next to the figures (exported as `hetero`): Alex-16 on the
/// classic 2-FPGA platform *and* a mixed VU9P+KU115 pair, each under the
/// uniform 70 % constraint *and* a skewed per-resource budget.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidGrid`] only if the hard-coded axes were
/// edited into an invalid state.
pub fn hetero_smoke() -> Result<FigureSpec, ExploreError> {
    use mfa_platform::{
        DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget, ResourceVec,
    };
    let mixed_pair = HeterogeneousPlatform::new(
        "1×VU9P + 1×KU115",
        vec![
            DeviceGroup::new(FpgaDevice::vu9p(), 1),
            DeviceGroup::new(FpgaDevice::ku115(), 1),
        ],
    );
    let skewed_budget = ResourceBudget::new(ResourceVec::new(0.9, 0.9, 0.6, 0.75), 0.9);
    let grid = SweepGrid::builder()
        .case(CaseSpec::from_paper(PaperCase::Alex16OnTwoFpgas))
        .fpga_counts([2])
        .platform(crate::PlatformSpec::platform(mixed_pair))
        .constraints([0.70])
        .budget(skewed_budget)
        .backend(SolverSpec::gpa(GpaOptions::fast()))
        .build()?;
    Ok(FigureSpec {
        name: "hetero",
        title: "New axes: heterogeneous platform × per-resource budget (Alex-16)".into(),
        constraints: vec![0.70, 0.90],
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_smoke_covers_both_new_axes() {
        let figure = hetero_smoke().unwrap();
        assert_eq!(figure.grid.num_series(), 2);
        assert_eq!(figure.grid.budgets().len(), 2);
        assert_eq!(figure.grid.platforms().len(), 2);
    }

    #[test]
    fn quick_figures_cover_fig2_to_fig5() {
        let figures = paper_figures(true, true).unwrap();
        assert_eq!(
            figures.iter().map(|f| f.name).collect::<Vec<_>>(),
            ["fig2", "fig3", "fig4", "fig5"]
        );
        // Fig. 2 sweeps T values as separate GP+A backends; Figs. 3–5 run
        // GP+A next to the two MINLP modes.
        assert_eq!(figures[0].grid.num_series(), 2);
        for figure in &figures[1..] {
            assert_eq!(figure.grid.num_series(), 3, "{}", figure.name);
        }
        // The constraint list mirrors the grid's budget axis.
        for figure in &figures {
            assert_eq!(
                figure.constraints.len(),
                figure.grid.budgets().len(),
                "{}",
                figure.name
            );
        }
    }

    #[test]
    fn quick_exact_budgets_are_node_limited_not_time_limited() {
        // A wall-clock limit would make the golden snapshots depend on
        // machine load; assert the quick configuration never carries one.
        for figure in paper_figures(true, true).unwrap() {
            for backend in figure.grid.backends() {
                if let SolverSpec::Exact { options, .. } = backend {
                    assert_eq!(options.solver.time_limit_seconds, None, "{}", figure.name);
                    assert!(options.solver.max_nodes <= 12);
                }
            }
        }
    }

    #[test]
    fn exact_flag_drops_the_minlp_series() {
        let figures = paper_figures(true, false).unwrap();
        for figure in &figures[1..] {
            assert_eq!(figure.grid.num_series(), 1, "{}", figure.name);
        }
    }

    #[test]
    fn full_figures_have_the_paper_axes() {
        let figures = paper_figures(false, true).unwrap();
        assert_eq!(figures[0].constraints.len(), 11);
        assert_eq!(figures[0].grid.num_series(), 8); // one per T value
        assert_eq!(figures[1].constraints.len(), 7);
        assert_eq!(figures[3].constraints.len(), 6);
    }
}
