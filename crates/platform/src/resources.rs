//! Component-wise FPGA resource vectors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A vector over the four FPGA resource classes the allocator tracks.
///
/// The same type is used for absolute capacities (e.g. "6 840 DSP slices"),
/// absolute usages, and fractional utilizations (e.g. "0.21 of the device's
/// DSPs") — the interpretation is the caller's. The paper's experiments work
/// in fractions of one FPGA, which is also what the allocation crates use.
///
/// # Example
///
/// ```
/// use mfa_platform::ResourceVec;
///
/// let a = ResourceVec::bram_dsp(0.10, 0.20);
/// let b = a * 3.0;
/// assert!((b.dsp - 0.60).abs() < 1e-12);
/// assert!(b.fits_within(&ResourceVec::uniform(0.75), 1e-9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec {
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// Block RAM (36 Kb blocks or a fraction thereof).
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl ResourceVec {
    /// All-zero resource vector.
    pub fn zero() -> Self {
        ResourceVec::default()
    }

    /// Creates a vector with every component equal to `value`.
    pub fn uniform(value: f64) -> Self {
        ResourceVec {
            lut: value,
            ff: value,
            bram: value,
            dsp: value,
        }
    }

    /// Creates a vector from all four components.
    pub fn new(lut: f64, ff: f64, bram: f64, dsp: f64) -> Self {
        ResourceVec { lut, ff, bram, dsp }
    }

    /// Creates a vector with only BRAM and DSP set (the two classes the paper
    /// reports, the others being non-critical).
    pub fn bram_dsp(bram: f64, dsp: f64) -> Self {
        ResourceVec {
            lut: 0.0,
            ff: 0.0,
            bram,
            dsp,
        }
    }

    /// Largest component.
    pub fn max_component(&self) -> f64 {
        self.lut.max(self.ff).max(self.bram).max(self.dsp)
    }

    /// Component-wise `self ≤ other + tol`.
    pub fn fits_within(&self, other: &ResourceVec, tol: f64) -> bool {
        self.lut <= other.lut + tol
            && self.ff <= other.ff + tol
            && self.bram <= other.bram + tol
            && self.dsp <= other.dsp + tol
    }

    /// Component-wise division (used to turn absolute usage into utilization
    /// relative to a capacity). Components whose divisor is zero map to zero.
    pub fn fraction_of(&self, capacity: &ResourceVec) -> ResourceVec {
        fn div(a: f64, b: f64) -> f64 {
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
        ResourceVec {
            lut: div(self.lut, capacity.lut),
            ff: div(self.ff, capacity.ff),
            bram: div(self.bram, capacity.bram),
            dsp: div(self.dsp, capacity.dsp),
        }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        ResourceVec {
            lut: self.lut.max(other.lut),
            ff: self.ff.max(other.ff),
            bram: self.bram.max(other.bram),
            dsp: self.dsp.max(other.dsp),
        }
    }

    /// Returns `true` if every component is finite and nonnegative.
    pub fn is_valid(&self) -> bool {
        [self.lut, self.ff, self.bram, self.dsp]
            .iter()
            .all(|x| x.is_finite() && *x >= 0.0)
    }

    /// The largest integer `k ≥ 0` (within a relative tolerance of `1e-9` on
    /// the limiting ratio, absorbing accumulated float error) such that
    /// `k · self` still fits within `budget` (component-wise); `None` when
    /// `self` is zero in every component (in which case any `k` fits).
    /// Ratios beyond the `u32` range are capped at `u32::MAX`.
    pub fn max_copies_within(&self, budget: &ResourceVec) -> Option<u32> {
        let mut bound: Option<f64> = None;
        for (need, avail) in [
            (self.lut, budget.lut),
            (self.ff, budget.ff),
            (self.bram, budget.bram),
            (self.dsp, budget.dsp),
        ] {
            if need > 0.0 {
                let k = (avail / need).max(0.0);
                bound = Some(bound.map_or(k, |b: f64| b.min(k)));
            }
        }
        bound.map(|b| {
            // The tolerance must scale with the ratio: an absolute `+1e-9`
            // nudge both miscounted near-integer ratios of tiny per-copy
            // needs and was rounded away entirely on large ratios. The
            // conversion is capped explicitly so ratios beyond u32 range
            // degrade to `u32::MAX` instead of relying on silent saturation.
            let copies = (b * (1.0 + 1e-9)).floor();
            if copies >= u32::MAX as f64 {
                u32::MAX
            } else {
                copies as u32
            }
        })
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            lut: self.lut - rhs.lut,
            ff: self.ff - rhs.ff,
            bram: self.bram - rhs.bram,
            dsp: self.dsp - rhs.dsp,
        }
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, rhs: f64) -> ResourceVec {
        ResourceVec {
            lut: self.lut * rhs,
            ff: self.ff * rhs,
            bram: self.bram * rhs,
            dsp: self.dsp * rhs,
        }
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::zero(), |acc, x| acc + x)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lut {:.3}, ff {:.3}, bram {:.3}, dsp {:.3}",
            self.lut, self.ff, self.bram, self.dsp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_accessors() {
        let r = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.max_component(), 4.0);
        assert_eq!(ResourceVec::uniform(0.5).lut, 0.5);
        let bd = ResourceVec::bram_dsp(0.1, 0.2);
        assert_eq!(bd.lut, 0.0);
        assert_eq!(bd.dsp, 0.2);
        assert!(ResourceVec::zero().is_valid());
        assert!(!ResourceVec::new(-1.0, 0.0, 0.0, 0.0).is_valid());
    }

    #[test]
    fn arithmetic_behaves_componentwise() {
        let a = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVec::uniform(1.0);
        assert_eq!((a + b).dsp, 5.0);
        assert_eq!((a - b).lut, 0.0);
        assert_eq!((a * 2.0).bram, 6.0);
        let mut c = a;
        c += b;
        assert_eq!(c.ff, 3.0);
        let total: ResourceVec = vec![a, b].into_iter().sum();
        assert_eq!(total, c);
        assert_eq!(a.max(&(b * 10.0)).lut, 10.0);
    }

    #[test]
    fn fits_within_and_fraction() {
        let usage = ResourceVec::new(10.0, 20.0, 30.0, 40.0);
        let capacity = ResourceVec::new(100.0, 100.0, 100.0, 100.0);
        assert!(usage.fits_within(&capacity, 0.0));
        assert!(!capacity.fits_within(&usage, 0.0));
        let frac = usage.fraction_of(&capacity);
        assert!((frac.dsp - 0.4).abs() < 1e-12);
        let zero_cap = ResourceVec::zero();
        assert_eq!(usage.fraction_of(&zero_cap), ResourceVec::zero());
    }

    #[test]
    fn max_copies_within_budget() {
        let per_cu = ResourceVec::bram_dsp(0.10, 0.21);
        let budget = ResourceVec::uniform(0.65);
        // DSP limits: floor(0.65 / 0.21) = 3.
        assert_eq!(per_cu.max_copies_within(&budget), Some(3));
        assert_eq!(ResourceVec::zero().max_copies_within(&budget), None);
    }

    // Regression: the old absolute `+1e-9` epsilon was rounded away on large
    // ratios, under-counting a ratio sitting a relative 5e-10 below an
    // integer; the relative epsilon admits it.
    #[test]
    fn large_ratios_use_a_relative_tolerance() {
        let per_cu = ResourceVec::bram_dsp(0.0, 1.0);
        let budget = ResourceVec::uniform(999_999.999_5);
        assert_eq!(per_cu.max_copies_within(&budget), Some(1_000_000));
    }

    // Regression: ratios beyond u32 range are capped explicitly instead of
    // relying on the silent saturation of the bare `as u32` cast.
    #[test]
    fn huge_ratios_cap_at_u32_max() {
        let per_cu = ResourceVec::bram_dsp(0.0, 1e-30);
        let budget = ResourceVec::uniform(1.0);
        assert_eq!(per_cu.max_copies_within(&budget), Some(u32::MAX));
    }

    #[test]
    fn display_mentions_all_components() {
        let text = ResourceVec::uniform(0.25).to_string();
        for key in ["lut", "ff", "bram", "dsp"] {
            assert!(text.contains(key));
        }
    }

    proptest! {
        #[test]
        fn addition_is_commutative_and_monotone(
            a in proptest::collection::vec(0.0..10.0f64, 4),
            b in proptest::collection::vec(0.0..10.0f64, 4)
        ) {
            let x = ResourceVec::new(a[0], a[1], a[2], a[3]);
            let y = ResourceVec::new(b[0], b[1], b[2], b[3]);
            prop_assert_eq!(x + y, y + x);
            prop_assert!(x.fits_within(&(x + y), 1e-12));
        }

        #[test]
        fn max_copies_is_maximal(
            bram in 0.01..0.5f64, dsp in 0.01..0.5f64, budget in 0.1..1.0f64
        ) {
            let per_cu = ResourceVec::bram_dsp(bram, dsp);
            let cap = ResourceVec::uniform(budget);
            let k = per_cu.max_copies_within(&cap).unwrap();
            prop_assert!((per_cu * k as f64).fits_within(&cap, 1e-6));
            prop_assert!(!(per_cu * (k + 1) as f64).fits_within(&cap, -1e-6));
        }

        /// Tiny per-copy needs: the returned count is still correct within a
        /// relative tolerance (the absolute epsilon of the old code was the
        /// wrong scale for these inputs).
        #[test]
        fn tiny_needs_count_within_relative_tolerance(
            need in 1e-12..1e-6f64, mult in 0.1..10.0f64
        ) {
            let per_cu = ResourceVec::bram_dsp(0.0, need);
            let avail = need * mult;
            let cap = ResourceVec::bram_dsp(0.0, avail);
            let k = per_cu.max_copies_within(&cap).unwrap();
            prop_assert!(k as f64 * need <= avail * (1.0 + 1e-6),
                "k = {k}, need = {need}, avail = {avail}");
            prop_assert!((k + 1) as f64 * need > avail * (1.0 - 1e-6),
                "k = {k}, need = {need}, avail = {avail}");
        }

        /// Huge ratios never wrap or panic: they cap at `u32::MAX`.
        #[test]
        fn huge_ratios_are_capped(
            need in 1e-30..1e-20f64, avail in 0.1..1.0f64
        ) {
            let per_cu = ResourceVec::bram_dsp(need, need);
            let cap = ResourceVec::uniform(avail);
            prop_assert_eq!(per_cu.max_copies_within(&cap), Some(u32::MAX));
        }
    }
}
