//! Single-FPGA device model.

use serde::{Deserialize, Serialize};

use crate::ResourceVec;

/// One FPGA device: absolute resource capacities plus the DRAM bandwidth of
/// its attached memory banks.
///
/// # Example
///
/// ```
/// use mfa_platform::FpgaDevice;
///
/// let device = FpgaDevice::vu9p();
/// assert!(device.capacity().dsp > 6000.0);
/// assert!(device.dram_bandwidth_gbps() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    name: String,
    capacity: ResourceVec,
    dram_bandwidth_gbps: f64,
}

impl FpgaDevice {
    /// Creates a device model from its capacities and DRAM bandwidth (GB/s).
    ///
    /// # Panics
    ///
    /// Panics if any capacity component or the bandwidth is negative or
    /// non-finite.
    pub fn new(name: impl Into<String>, capacity: ResourceVec, dram_bandwidth_gbps: f64) -> Self {
        assert!(
            capacity.is_valid(),
            "device capacities must be finite and nonnegative"
        );
        assert!(
            dram_bandwidth_gbps.is_finite() && dram_bandwidth_gbps >= 0.0,
            "DRAM bandwidth must be finite and nonnegative"
        );
        FpgaDevice {
            name: name.into(),
            capacity,
            dram_bandwidth_gbps,
        }
    }

    /// The Xilinx Virtex UltraScale+ VU9P used on AWS F1 instances.
    ///
    /// Capacities follow the public device tables (1 182 240 LUTs,
    /// 2 364 480 FFs, 2 160 BRAM36 blocks, 6 840 DSP48 slices); the DRAM
    /// bandwidth is the aggregate of the four DDR4-2133 banks attached to each
    /// FPGA card (≈ 64 GB/s peak).
    pub fn vu9p() -> Self {
        FpgaDevice::new(
            "xcvu9p-flgb2104-2-i",
            ResourceVec::new(1_182_240.0, 2_364_480.0, 2_160.0, 6_840.0),
            64.0,
        )
    }

    /// The Xilinx Kintex UltraScale KU115 found on earlier-generation
    /// accelerator cards; a natural second device type for heterogeneous
    /// fleets next to the VU9P.
    ///
    /// Capacities follow the public device tables (663 360 LUTs, 1 326 720
    /// FFs, 2 160 BRAM36 blocks, 5 520 DSP48 slices); the DRAM bandwidth is
    /// the aggregate of the two DDR4-2400 x64 banks typically attached
    /// (≈ 38.4 GB/s peak).
    pub fn ku115() -> Self {
        FpgaDevice::new(
            "xcku115-flvb2104-2-e",
            ResourceVec::new(663_360.0, 1_326_720.0, 2_160.0, 5_520.0),
            38.4,
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Absolute resource capacities.
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Peak DRAM bandwidth in GB/s for the banks attached to this FPGA.
    pub fn dram_bandwidth_gbps(&self) -> f64 {
        self.dram_bandwidth_gbps
    }

    /// Converts an absolute usage into a fraction of this device's capacity.
    pub fn utilization(&self, usage: &ResourceVec) -> ResourceVec {
        usage.fraction_of(&self.capacity)
    }
}

impl Default for FpgaDevice {
    fn default() -> Self {
        FpgaDevice::vu9p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_preset_matches_public_tables() {
        let d = FpgaDevice::vu9p();
        assert_eq!(d.capacity().dsp, 6_840.0);
        assert_eq!(d.capacity().bram, 2_160.0);
        assert!(d.name().contains("vu9p"));
        assert_eq!(FpgaDevice::default(), d);
    }

    #[test]
    fn ku115_preset_matches_public_tables() {
        let d = FpgaDevice::ku115();
        assert_eq!(d.capacity().dsp, 5_520.0);
        assert_eq!(d.capacity().lut, 663_360.0);
        assert!(d.name().contains("ku115"));
        // Strictly smaller than the VU9P in every class except BRAM.
        let vu9p = FpgaDevice::vu9p();
        assert!(d.capacity().dsp < vu9p.capacity().dsp);
        assert!(d.capacity().lut < vu9p.capacity().lut);
        assert_eq!(d.capacity().bram, vu9p.capacity().bram);
        assert!(d.dram_bandwidth_gbps() < vu9p.dram_bandwidth_gbps());
    }

    #[test]
    fn utilization_is_relative_to_capacity() {
        let d = FpgaDevice::vu9p();
        let usage = ResourceVec::bram_dsp(216.0, 684.0);
        let u = d.utilization(&usage);
        assert!((u.bram - 0.1).abs() < 1e-12);
        assert!((u.dsp - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn negative_bandwidth_is_rejected() {
        let _ = FpgaDevice::new("bad", ResourceVec::uniform(1.0), -1.0);
    }
}
