//! FPGA device and multi-FPGA platform models.
//!
//! The reproduced paper targets AWS EC2 F1 instances: a host CPU attached to
//! up to eight Xilinx Virtex UltraScale+ VU9P FPGAs, each with its own DDR4
//! DRAM banks. The allocation algorithms only need two facts about the
//! platform: the per-FPGA resource capacities (LUT/FF/BRAM/DSP) and the
//! per-FPGA DRAM bandwidth. This crate provides those models:
//!
//! * [`ResourceVec`] — a vector of the four FPGA resource classes with the
//!   component-wise arithmetic the allocator needs,
//! * [`FpgaDevice`] — one FPGA (capacities + DRAM bandwidth), with a
//!   [`FpgaDevice::vu9p`] preset,
//! * [`MultiFpgaPlatform`] — `F` identical devices orchestrated by a host,
//!   with AWS F1 instance presets ([`MultiFpgaPlatform::aws_f1_16xlarge`] and
//!   friends),
//! * [`ResourceBudget`] — the per-FPGA constraint used in the paper's
//!   experiments ("resource constraint %" applied to every class plus a
//!   bandwidth cap).
//!
//! # Example
//!
//! ```
//! use mfa_platform::{MultiFpgaPlatform, ResourceBudget};
//!
//! let platform = MultiFpgaPlatform::aws_f1_16xlarge();
//! assert_eq!(platform.num_fpgas(), 8);
//! let budget = ResourceBudget::uniform(0.61);
//! assert!((budget.resource_fraction().dsp - 0.61).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod device;
mod platform;
mod resources;

pub use budget::ResourceBudget;
pub use device::FpgaDevice;
pub use platform::MultiFpgaPlatform;
pub use resources::ResourceVec;
