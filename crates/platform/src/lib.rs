//! FPGA device and multi-FPGA platform models.
//!
//! The reproduced paper targets AWS EC2 F1 instances: a host CPU attached to
//! up to eight Xilinx Virtex UltraScale+ VU9P FPGAs, each with its own DDR4
//! DRAM banks. The allocation algorithms only need two facts about each
//! FPGA: its resource capacities (LUT/FF/BRAM/DSP) and its DRAM bandwidth.
//! This crate provides those models:
//!
//! * [`ResourceVec`] — a vector of the four FPGA resource classes with the
//!   component-wise arithmetic the allocator needs,
//! * [`FpgaDevice`] — one FPGA (capacities + DRAM bandwidth), with
//!   [`FpgaDevice::vu9p`] and [`FpgaDevice::ku115`] presets,
//! * [`MultiFpgaPlatform`] — `F` identical devices orchestrated by a host,
//!   with AWS F1 instance presets ([`MultiFpgaPlatform::aws_f1_16xlarge`] and
//!   friends),
//! * [`HeterogeneousPlatform`] — a fleet of [`DeviceGroup`]s mixing device
//!   generations (e.g. 4×VU9P + 4×KU115); a [`MultiFpgaPlatform`] converts
//!   into the one-group special case, and the scale helpers translate kernel
//!   fractions between device types,
//! * [`ResourceBudget`] — the per-FPGA constraint used in the paper's
//!   experiments: either a uniform "resource constraint %" applied to every
//!   class, or independent per-class fractions plus a bandwidth cap.
//!
//! # Example
//!
//! ```
//! use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform, ResourceBudget};
//!
//! let fleet = HeterogeneousPlatform::new(
//!     "mixed",
//!     vec![
//!         DeviceGroup::new(FpgaDevice::vu9p(), 4),
//!         DeviceGroup::new(FpgaDevice::ku115(), 4),
//!     ],
//! );
//! assert_eq!(fleet.num_fpgas(), 8);
//! let budget = ResourceBudget::uniform(0.61);
//! assert!((budget.resource_fraction().dsp - 0.61).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod device;
mod platform;
mod resources;

pub use budget::ResourceBudget;
pub use device::FpgaDevice;
pub use platform::{DeviceGroup, HeterogeneousPlatform, MultiFpgaPlatform};
pub use resources::ResourceVec;
