//! Per-FPGA resource and bandwidth budgets.

use serde::{Deserialize, Serialize};

use crate::ResourceVec;

/// The per-FPGA constraint applied during allocation: a fraction of each
/// resource class plus a fraction of the DRAM bandwidth that the mapped CUs
/// may use together.
///
/// The paper sweeps a single "resource constraint %" that applies to every
/// resource class while the bandwidth budget stays at 100 %; use
/// [`ResourceBudget::uniform`] for that case.
///
/// # Example
///
/// ```
/// use mfa_platform::ResourceBudget;
///
/// let budget = ResourceBudget::uniform(0.61);
/// assert!((budget.resource_fraction().bram - 0.61).abs() < 1e-12);
/// assert!((budget.bandwidth_fraction() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    resource_fraction: ResourceVec,
    bandwidth_fraction: f64,
}

impl ResourceBudget {
    /// A budget that allows `fraction` of every resource class and the full
    /// DRAM bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn uniform(fraction: f64) -> Self {
        ResourceBudget::new(ResourceVec::uniform(fraction), 1.0)
    }

    /// A budget with independent per-class resource fractions and a bandwidth
    /// fraction.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is not in `(0, 1]`.
    pub fn new(resource_fraction: ResourceVec, bandwidth_fraction: f64) -> Self {
        assert!(
            resource_fraction.is_valid()
                && resource_fraction.max_component() <= 1.0
                && resource_fraction.lut > 0.0
                && resource_fraction.ff > 0.0
                && resource_fraction.bram > 0.0
                && resource_fraction.dsp > 0.0,
            "resource fractions must lie in (0, 1]"
        );
        assert!(
            bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
            "bandwidth fraction must lie in (0, 1]"
        );
        ResourceBudget {
            resource_fraction,
            bandwidth_fraction,
        }
    }

    /// Per-class resource fractions.
    pub fn resource_fraction(&self) -> &ResourceVec {
        &self.resource_fraction
    }

    /// Bandwidth fraction.
    pub fn bandwidth_fraction(&self) -> f64 {
        self.bandwidth_fraction
    }

    /// Returns a copy of the budget with its resource fractions scaled by
    /// `factor`, clamped to 1.0 (used by the heuristic's `T`/`Δ` relaxation
    /// loop, which temporarily allows exceeding the nominal constraint).
    ///
    /// # Panics
    ///
    /// Panics if the scaled fractions leave `(0, 1]` — i.e. if `factor` is
    /// zero, negative or NaN. The result goes through the same validation as
    /// [`ResourceBudget::new`], so no constructor path can smuggle in a
    /// budget the others would reject.
    #[must_use]
    pub fn scaled_resources(&self, factor: f64) -> Self {
        let scaled = self.resource_fraction * factor;
        // `f64::min` would silently swallow a NaN factor (min(NaN, 1.0) is
        // 1.0); this clamp keeps NaN so validation can reject it.
        fn clamp(x: f64) -> f64 {
            if x > 1.0 {
                1.0
            } else {
                x
            }
        }
        ResourceBudget::new(
            ResourceVec {
                lut: clamp(scaled.lut),
                ff: clamp(scaled.ff),
                bram: clamp(scaled.bram),
                dsp: clamp(scaled.dsp),
            },
            self.bandwidth_fraction,
        )
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::uniform(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_budget() {
        let b = ResourceBudget::uniform(0.75);
        assert_eq!(b.resource_fraction().dsp, 0.75);
        assert_eq!(b.bandwidth_fraction(), 1.0);
        assert_eq!(ResourceBudget::default().resource_fraction().lut, 1.0);
    }

    #[test]
    fn scaled_resources_clamps_at_one() {
        let b = ResourceBudget::uniform(0.8).scaled_resources(2.0);
        assert_eq!(b.resource_fraction().dsp, 1.0);
        assert_eq!(b.bandwidth_fraction(), 1.0);
        let smaller = ResourceBudget::uniform(0.8).scaled_resources(0.5);
        assert!((smaller.resource_fraction().bram - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resource fractions")]
    fn zero_fraction_is_rejected() {
        let _ = ResourceBudget::uniform(0.0);
    }

    // Regression: `scaled_resources` used to construct the struct directly,
    // bypassing `new()`'s validation, so a zero/negative/NaN factor silently
    // produced a budget every other constructor rejects.
    #[test]
    #[should_panic(expected = "resource fractions")]
    fn scaling_by_zero_is_rejected() {
        let _ = ResourceBudget::uniform(0.8).scaled_resources(0.0);
    }

    #[test]
    #[should_panic(expected = "resource fractions")]
    fn scaling_by_a_negative_factor_is_rejected() {
        let _ = ResourceBudget::uniform(0.8).scaled_resources(-2.0);
    }

    #[test]
    #[should_panic(expected = "resource fractions")]
    fn scaling_by_nan_is_rejected() {
        let _ = ResourceBudget::uniform(0.8).scaled_resources(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "bandwidth fraction")]
    fn bandwidth_fraction_above_one_is_rejected() {
        let _ = ResourceBudget::new(ResourceVec::uniform(0.5), 1.5);
    }
}
