//! Multi-FPGA platform models: `F` identical FPGAs ([`MultiFpgaPlatform`])
//! and mixed-generation fleets of device groups ([`HeterogeneousPlatform`]).

use serde::{Deserialize, Serialize};

use crate::{FpgaDevice, ResourceVec};

/// A host-orchestrated platform of `F` identical FPGA devices, as in the AWS
/// EC2 F1 family. All inter-kernel communication goes through each FPGA's
/// DRAM, coordinated by the host (the paper's execution model).
///
/// # Example
///
/// ```
/// use mfa_platform::MultiFpgaPlatform;
///
/// let f1 = MultiFpgaPlatform::aws_f1_16xlarge();
/// assert_eq!(f1.num_fpgas(), 8);
/// let pair = f1.with_num_fpgas(2);
/// assert_eq!(pair.num_fpgas(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFpgaPlatform {
    name: String,
    device: FpgaDevice,
    num_fpgas: usize,
}

impl MultiFpgaPlatform {
    /// Creates a platform of `num_fpgas` identical `device`s.
    ///
    /// # Panics
    ///
    /// Panics if `num_fpgas` is zero.
    pub fn new(name: impl Into<String>, device: FpgaDevice, num_fpgas: usize) -> Self {
        assert!(num_fpgas > 0, "a platform needs at least one FPGA");
        MultiFpgaPlatform {
            name: name.into(),
            device,
            num_fpgas,
        }
    }

    /// AWS EC2 `f1.2xlarge`: one VU9P FPGA.
    pub fn aws_f1_2xlarge() -> Self {
        MultiFpgaPlatform::new("f1.2xlarge", FpgaDevice::vu9p(), 1)
    }

    /// AWS EC2 `f1.4xlarge`: two VU9P FPGAs.
    pub fn aws_f1_4xlarge() -> Self {
        MultiFpgaPlatform::new("f1.4xlarge", FpgaDevice::vu9p(), 2)
    }

    /// AWS EC2 `f1.16xlarge`: eight VU9P FPGAs (the platform used in the
    /// paper's experiments).
    pub fn aws_f1_16xlarge() -> Self {
        MultiFpgaPlatform::new("f1.16xlarge", FpgaDevice::vu9p(), 8)
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-FPGA device model.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Number of FPGAs.
    pub fn num_fpgas(&self) -> usize {
        self.num_fpgas
    }

    /// Returns a copy of this platform with a different FPGA count (used by
    /// the design-space exploration sweeps, which vary `F` from 2 to 8 on the
    /// same device).
    ///
    /// # Panics
    ///
    /// Panics if `num_fpgas` is zero.
    #[must_use]
    pub fn with_num_fpgas(&self, num_fpgas: usize) -> Self {
        MultiFpgaPlatform::new(
            format!("{}×{}", num_fpgas, self.device.name()),
            self.device.clone(),
            num_fpgas,
        )
    }
}

impl Default for MultiFpgaPlatform {
    fn default() -> Self {
        MultiFpgaPlatform::aws_f1_16xlarge()
    }
}

/// A run of identical FPGAs inside a [`HeterogeneousPlatform`].
///
/// Besides the device model and count, a group carries two per-group knobs
/// that churn workloads need (mixed device generations rarely clock alike,
/// and shared fleets rarely grant every group the same budget slice):
///
/// * [`wcet_scale`](Self::wcet_scale) — a slowdown factor `s_g ≥ 1` applied
///   to every kernel's WCET on this group's devices. The reference device
///   (group 0 by convention) is the fastest, so solver relaxations computed
///   at reference speed stay valid lower bounds.
/// * [`budget_scale`](Self::budget_scale) — a factor `b_g > 0` multiplying
///   the per-FPGA budget fractions (resources and bandwidth) on this group.
///
/// Both default to `1.0`, in which case every consumer is bit-identical to
/// the unscaled model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceGroup {
    device: FpgaDevice,
    count: usize,
    wcet_scale: f64,
    budget_scale: f64,
}

impl DeviceGroup {
    /// Creates a group of `count` identical `device`s with neutral scales.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(device: FpgaDevice, count: usize) -> Self {
        assert!(count > 0, "a device group needs at least one FPGA");
        DeviceGroup {
            device,
            count,
            wcet_scale: 1.0,
            budget_scale: 1.0,
        }
    }

    /// Sets the per-group WCET slowdown factor `s_g`: a CU hosted on this
    /// group takes `s_g × WCET` per item. Must be ≥ 1 — the reference device
    /// is the fastest generation, which keeps reference-speed relaxations
    /// valid lower bounds on the scaled problem.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is non-finite or below 1.
    #[must_use]
    pub fn with_wcet_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 1.0,
            "WCET scale must be a finite slowdown factor ≥ 1, got {scale}"
        );
        self.wcet_scale = scale;
        self
    }

    /// Sets the per-group budget factor `b_g`: the per-FPGA budget fractions
    /// (every resource class and the bandwidth cap) are multiplied by `b_g`
    /// on this group's devices.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is non-finite or not strictly positive.
    #[must_use]
    pub fn with_budget_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "budget scale must be a finite positive factor, got {scale}"
        );
        self.budget_scale = scale;
        self
    }

    /// The group's device model.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Number of FPGAs in the group.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Per-group WCET slowdown factor `s_g` (1.0 unless configured).
    pub fn wcet_scale(&self) -> f64 {
        self.wcet_scale
    }

    /// Per-group budget factor `b_g` (1.0 unless configured).
    pub fn budget_scale(&self) -> f64 {
        self.budget_scale
    }
}

/// A host-orchestrated platform whose FPGAs come in *device groups*: an
/// ordered list of `(device, count)` runs, as in a cloud fleet that mixes
/// device generations (e.g. VU9P cards next to older KU115 cards).
///
/// Kernel characterizations are expressed as fractions of the platform's
/// *reference device* — the device of the first group. The
/// [`scale_to_group`](HeterogeneousPlatform::scale_to_group) /
/// [`scale_bandwidth_to_group`](HeterogeneousPlatform::scale_bandwidth_to_group)
/// helpers convert such fractions into fractions of another group's device,
/// which is how the allocation crates account for a CU costing a larger share
/// of a smaller FPGA. A [`MultiFpgaPlatform`] converts into the one-group
/// special case via `From`.
///
/// FPGAs are enumerated group-major: group 0's devices come first, then
/// group 1's, and so on.
///
/// # Example
///
/// ```
/// use mfa_platform::{DeviceGroup, FpgaDevice, HeterogeneousPlatform};
///
/// let fleet = HeterogeneousPlatform::new(
///     "mixed",
///     vec![
///         DeviceGroup::new(FpgaDevice::vu9p(), 4),
///         DeviceGroup::new(FpgaDevice::ku115(), 4),
///     ],
/// );
/// assert_eq!(fleet.num_fpgas(), 8);
/// assert_eq!(fleet.num_groups(), 2);
/// assert_eq!(fleet.group_of_fpga(5), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousPlatform {
    name: String,
    groups: Vec<DeviceGroup>,
}

impl HeterogeneousPlatform {
    /// Creates a platform from an ordered list of device groups. The first
    /// group's device becomes the reference device for kernel fractions.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn new(name: impl Into<String>, groups: Vec<DeviceGroup>) -> Self {
        assert!(
            !groups.is_empty(),
            "a platform needs at least one device group"
        );
        HeterogeneousPlatform {
            name: name.into(),
            groups,
        }
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device groups, in order.
    pub fn groups(&self) -> &[DeviceGroup] {
        &self.groups
    }

    /// Number of device groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// One device group.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> &DeviceGroup {
        &self.groups[g]
    }

    /// Total number of FPGAs across all groups.
    pub fn num_fpgas(&self) -> usize {
        self.groups.iter().map(DeviceGroup::count).sum()
    }

    /// `true` when the platform has a single device group (the paper's
    /// `F` identical FPGAs).
    pub fn is_homogeneous(&self) -> bool {
        self.groups.len() == 1
    }

    /// The device kernel fractions are expressed against (the first group's).
    pub fn reference_device(&self) -> &FpgaDevice {
        &self.groups[0].device
    }

    /// Group index of FPGA `f` under group-major enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn group_of_fpga(&self, f: usize) -> usize {
        let mut remaining = f;
        for (g, group) in self.groups.iter().enumerate() {
            if remaining < group.count {
                return g;
            }
            remaining -= group.count;
        }
        panic!("FPGA index {f} out of range for {} FPGAs", self.num_fpgas());
    }

    /// Converts a resource fraction of the reference device into a fraction
    /// of group `g`'s device (component-wise `frac · C_ref / C_g`). A zero
    /// fraction stays zero; a positive fraction of a class the target device
    /// lacks entirely becomes infinite (the kernel cannot be hosted there).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn scale_to_group(&self, g: usize, fraction: &ResourceVec) -> ResourceVec {
        let reference = self.reference_device().capacity();
        let target = self.groups[g].device.capacity();
        if reference == target {
            return *fraction;
        }
        fn scale(frac: f64, c_ref: f64, c_target: f64) -> f64 {
            if frac == 0.0 {
                0.0
            } else if c_target == 0.0 {
                f64::INFINITY
            } else {
                frac * c_ref / c_target
            }
        }
        ResourceVec {
            lut: scale(fraction.lut, reference.lut, target.lut),
            ff: scale(fraction.ff, reference.ff, target.ff),
            bram: scale(fraction.bram, reference.bram, target.bram),
            dsp: scale(fraction.dsp, reference.dsp, target.dsp),
        }
    }

    /// Converts a bandwidth fraction of the reference device into a fraction
    /// of group `g`'s device bandwidth (same convention as
    /// [`scale_to_group`](Self::scale_to_group)).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn scale_bandwidth_to_group(&self, g: usize, fraction: f64) -> f64 {
        let reference = self.reference_device().dram_bandwidth_gbps();
        let target = self.groups[g].device.dram_bandwidth_gbps();
        if reference == target || fraction == 0.0 {
            fraction
        } else if target == 0.0 {
            f64::INFINITY
        } else {
            fraction * reference / target
        }
    }

    /// Returns a platform of `num_fpgas` copies of the reference device
    /// (used by design-space sweeps that vary the FPGA count of a case; a
    /// heterogeneous base collapses onto its reference device for this axis).
    ///
    /// # Panics
    ///
    /// Panics if `num_fpgas` is zero.
    #[must_use]
    pub fn with_num_fpgas(&self, num_fpgas: usize) -> Self {
        let device = self.reference_device().clone();
        HeterogeneousPlatform::new(
            format!("{}×{}", num_fpgas, device.name()),
            vec![DeviceGroup::new(device, num_fpgas)],
        )
    }
}

impl From<MultiFpgaPlatform> for HeterogeneousPlatform {
    fn from(platform: MultiFpgaPlatform) -> Self {
        HeterogeneousPlatform::new(
            platform.name.clone(),
            vec![DeviceGroup::new(platform.device, platform.num_fpgas)],
        )
    }
}

impl From<&MultiFpgaPlatform> for HeterogeneousPlatform {
    fn from(platform: &MultiFpgaPlatform) -> Self {
        HeterogeneousPlatform::from(platform.clone())
    }
}

impl Default for HeterogeneousPlatform {
    fn default() -> Self {
        HeterogeneousPlatform::from(MultiFpgaPlatform::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(MultiFpgaPlatform::aws_f1_2xlarge().num_fpgas(), 1);
        assert_eq!(MultiFpgaPlatform::aws_f1_4xlarge().num_fpgas(), 2);
        assert_eq!(MultiFpgaPlatform::aws_f1_16xlarge().num_fpgas(), 8);
        assert_eq!(MultiFpgaPlatform::default().name(), "f1.16xlarge");
    }

    #[test]
    fn with_num_fpgas_keeps_device() {
        let base = MultiFpgaPlatform::aws_f1_16xlarge();
        let four = base.with_num_fpgas(4);
        assert_eq!(four.num_fpgas(), 4);
        assert_eq!(four.device(), base.device());
        assert!(four.name().contains('4'));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_fpgas_is_rejected() {
        let _ = MultiFpgaPlatform::new("empty", FpgaDevice::vu9p(), 0);
    }

    fn mixed_fleet() -> HeterogeneousPlatform {
        HeterogeneousPlatform::new(
            "4×VU9P + 4×KU115",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 4),
                DeviceGroup::new(FpgaDevice::ku115(), 4),
            ],
        )
    }

    #[test]
    fn heterogeneous_platform_enumerates_group_major() {
        let fleet = mixed_fleet();
        assert_eq!(fleet.num_fpgas(), 8);
        assert_eq!(fleet.num_groups(), 2);
        assert!(!fleet.is_homogeneous());
        assert_eq!(fleet.group(1).count(), 4);
        for f in 0..4 {
            assert_eq!(fleet.group_of_fpga(f), 0);
        }
        for f in 4..8 {
            assert_eq!(fleet.group_of_fpga(f), 1);
        }
        assert_eq!(fleet.reference_device(), &FpgaDevice::vu9p());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_of_fpga_rejects_out_of_range() {
        let _ = mixed_fleet().group_of_fpga(8);
    }

    #[test]
    fn multi_fpga_platform_converts_to_one_group() {
        let hetero: HeterogeneousPlatform = MultiFpgaPlatform::aws_f1_4xlarge().into();
        assert!(hetero.is_homogeneous());
        assert_eq!(hetero.num_fpgas(), 2);
        assert_eq!(hetero.name(), "f1.4xlarge");
        assert_eq!(HeterogeneousPlatform::default().num_fpgas(), 8);
    }

    #[test]
    fn scaling_to_the_reference_group_is_the_identity() {
        let fleet = mixed_fleet();
        let frac = ResourceVec::bram_dsp(0.10, 0.21);
        assert_eq!(fleet.scale_to_group(0, &frac), frac);
        assert_eq!(fleet.scale_bandwidth_to_group(0, 0.3), 0.3);
    }

    #[test]
    fn scaling_to_a_smaller_device_inflates_fractions() {
        let fleet = mixed_fleet();
        let frac = ResourceVec::new(0.1, 0.1, 0.1, 0.1);
        let scaled = fleet.scale_to_group(1, &frac);
        // KU115 has fewer LUTs/FFs/DSPs than VU9P but the same BRAM count,
        // so those fractions grow while BRAM stays put.
        assert!(scaled.lut > 0.1 && scaled.ff > 0.1 && scaled.dsp > 0.1);
        assert!((scaled.bram - 0.1).abs() < 1e-12);
        // Exact ratio check on DSPs: 6840 / 5520.
        assert!((scaled.dsp - 0.1 * 6_840.0 / 5_520.0).abs() < 1e-12);
        // Bandwidth scales by the device ratio too.
        let bw = fleet.scale_bandwidth_to_group(1, 0.2);
        assert!((bw - 0.2 * 64.0 / 38.4).abs() < 1e-12);
        // Zero stays zero; a class the target lacks becomes infinite.
        assert_eq!(
            fleet.scale_to_group(1, &ResourceVec::zero()),
            ResourceVec::zero()
        );
        let odd = HeterogeneousPlatform::new(
            "odd",
            vec![
                DeviceGroup::new(FpgaDevice::vu9p(), 1),
                DeviceGroup::new(
                    FpgaDevice::new("no-dsp", ResourceVec::new(1.0, 1.0, 1.0, 0.0), 1.0),
                    1,
                ),
            ],
        );
        assert!(odd
            .scale_to_group(1, &ResourceVec::uniform(0.1))
            .dsp
            .is_infinite());
    }

    #[test]
    fn with_num_fpgas_collapses_onto_the_reference_device() {
        let scaled = mixed_fleet().with_num_fpgas(3);
        assert!(scaled.is_homogeneous());
        assert_eq!(scaled.num_fpgas(), 3);
        assert_eq!(scaled.reference_device(), &FpgaDevice::vu9p());
    }

    #[test]
    #[should_panic(expected = "at least one device group")]
    fn empty_group_list_is_rejected() {
        let _ = HeterogeneousPlatform::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one FPGA")]
    fn zero_count_group_is_rejected() {
        let _ = DeviceGroup::new(FpgaDevice::vu9p(), 0);
    }

    #[test]
    fn group_scales_default_to_neutral() {
        let g = DeviceGroup::new(FpgaDevice::vu9p(), 2);
        assert_eq!(g.wcet_scale(), 1.0);
        assert_eq!(g.budget_scale(), 1.0);
        let g = g.with_wcet_scale(1.4).with_budget_scale(0.8);
        assert_eq!(g.wcet_scale(), 1.4);
        assert_eq!(g.budget_scale(), 0.8);
    }

    #[test]
    #[should_panic(expected = "WCET scale")]
    fn wcet_scale_below_one_is_rejected() {
        let _ = DeviceGroup::new(FpgaDevice::vu9p(), 1).with_wcet_scale(0.9);
    }

    #[test]
    #[should_panic(expected = "WCET scale")]
    fn non_finite_wcet_scale_is_rejected() {
        let _ = DeviceGroup::new(FpgaDevice::vu9p(), 1).with_wcet_scale(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "budget scale")]
    fn zero_budget_scale_is_rejected() {
        let _ = DeviceGroup::new(FpgaDevice::vu9p(), 1).with_budget_scale(0.0);
    }

    #[test]
    #[should_panic(expected = "budget scale")]
    fn non_finite_budget_scale_is_rejected() {
        let _ = DeviceGroup::new(FpgaDevice::vu9p(), 1).with_budget_scale(f64::INFINITY);
    }
}
