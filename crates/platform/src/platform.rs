//! Multi-FPGA platform model (host CPU + `F` identical FPGAs).

use serde::{Deserialize, Serialize};

use crate::FpgaDevice;

/// A host-orchestrated platform of `F` identical FPGA devices, as in the AWS
/// EC2 F1 family. All inter-kernel communication goes through each FPGA's
/// DRAM, coordinated by the host (the paper's execution model).
///
/// # Example
///
/// ```
/// use mfa_platform::MultiFpgaPlatform;
///
/// let f1 = MultiFpgaPlatform::aws_f1_16xlarge();
/// assert_eq!(f1.num_fpgas(), 8);
/// let pair = f1.with_num_fpgas(2);
/// assert_eq!(pair.num_fpgas(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFpgaPlatform {
    name: String,
    device: FpgaDevice,
    num_fpgas: usize,
}

impl MultiFpgaPlatform {
    /// Creates a platform of `num_fpgas` identical `device`s.
    ///
    /// # Panics
    ///
    /// Panics if `num_fpgas` is zero.
    pub fn new(name: impl Into<String>, device: FpgaDevice, num_fpgas: usize) -> Self {
        assert!(num_fpgas > 0, "a platform needs at least one FPGA");
        MultiFpgaPlatform {
            name: name.into(),
            device,
            num_fpgas,
        }
    }

    /// AWS EC2 `f1.2xlarge`: one VU9P FPGA.
    pub fn aws_f1_2xlarge() -> Self {
        MultiFpgaPlatform::new("f1.2xlarge", FpgaDevice::vu9p(), 1)
    }

    /// AWS EC2 `f1.4xlarge`: two VU9P FPGAs.
    pub fn aws_f1_4xlarge() -> Self {
        MultiFpgaPlatform::new("f1.4xlarge", FpgaDevice::vu9p(), 2)
    }

    /// AWS EC2 `f1.16xlarge`: eight VU9P FPGAs (the platform used in the
    /// paper's experiments).
    pub fn aws_f1_16xlarge() -> Self {
        MultiFpgaPlatform::new("f1.16xlarge", FpgaDevice::vu9p(), 8)
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-FPGA device model.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Number of FPGAs.
    pub fn num_fpgas(&self) -> usize {
        self.num_fpgas
    }

    /// Returns a copy of this platform with a different FPGA count (used by
    /// the design-space exploration sweeps, which vary `F` from 2 to 8 on the
    /// same device).
    ///
    /// # Panics
    ///
    /// Panics if `num_fpgas` is zero.
    #[must_use]
    pub fn with_num_fpgas(&self, num_fpgas: usize) -> Self {
        MultiFpgaPlatform::new(
            format!("{}×{}", num_fpgas, self.device.name()),
            self.device.clone(),
            num_fpgas,
        )
    }
}

impl Default for MultiFpgaPlatform {
    fn default() -> Self {
        MultiFpgaPlatform::aws_f1_16xlarge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(MultiFpgaPlatform::aws_f1_2xlarge().num_fpgas(), 1);
        assert_eq!(MultiFpgaPlatform::aws_f1_4xlarge().num_fpgas(), 2);
        assert_eq!(MultiFpgaPlatform::aws_f1_16xlarge().num_fpgas(), 8);
        assert_eq!(MultiFpgaPlatform::default().name(), "f1.16xlarge");
    }

    #[test]
    fn with_num_fpgas_keeps_device() {
        let base = MultiFpgaPlatform::aws_f1_16xlarge();
        let four = base.with_num_fpgas(4);
        assert_eq!(four.num_fpgas(), 4);
        assert_eq!(four.device(), base.device());
        assert!(four.name().contains('4'));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_fpgas_is_rejected() {
        let _ = MultiFpgaPlatform::new("empty", FpgaDevice::vu9p(), 0);
    }
}
