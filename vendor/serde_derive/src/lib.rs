//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! switching to the real serde is a one-line manifest change, but no code in
//! the tree performs actual (de)serialization. These derives therefore expand
//! to nothing: they accept the input, validate nothing, and emit an empty
//! token stream.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
