//! Offline stub of `rand` 0.8.
//!
//! Implements the small slice of the rand API the workspace uses — seeded
//! reproducible `StdRng` plus `Rng::gen::<f64>()` — on top of a SplitMix64
//! generator. Deterministic for a fixed seed, which is all the simulator's
//! jitter model requires. Not cryptographically secure.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from 64 random bits.
///
/// Stands in for rand's `Standard` distribution for the types the workspace
/// actually draws.
pub trait Standard: Sized {
    /// Builds a sample from uniformly random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching rand's `Standard`.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        range.start + self.gen::<f64>() * (range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, full-period for any seed, and statistically fine for
    /// simulation jitter. The real `StdRng` is ChaCha12; callers relying only
    /// on "reproducible for a fixed seed" (as this workspace does) are
    /// unaffected by the substitution.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
