//! Offline stub of `criterion` 0.5.
//!
//! Implements the subset of the criterion API that the `mfa_bench` targets
//! use — `Criterion`, `benchmark_group`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery. Each
//! `bench_function` runs a short warm-up, then `sample_size` timed samples,
//! and prints the median per-iteration time. No plots, no outlier analysis.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one timing sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call so lazy initialisation and cache effects
        // do not land in the first sample.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI bootstrap; this stub ignores the arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group. Criterion reports summaries here; the stub prints per
    /// benchmark instead, so this is a no-op kept for API compatibility.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {label:<48} median {:>12.3?}", bencher.median());
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
///
/// Also accepts criterion's long form
/// `criterion_group!(name = benches; config = ...; targets = fn_a)` so bench
/// files written against the real crate keep compiling.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
