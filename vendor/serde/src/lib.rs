//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` derive macros (as no-ops) so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without crates.io access. No runtime (de)serialization is offered; the
//! workspace never calls it.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
