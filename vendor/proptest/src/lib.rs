//! Offline stub of `proptest` 1.x.
//!
//! Implements the slice of the proptest API that the workspace's
//! property-based integration tests use: [`Strategy`] with `prop_map`, range
//! and tuple strategies, [`collection::vec`], the [`proptest!`] test macro
//! and [`prop_assert!`]. Inputs are generated from a fixed-seed SplitMix64
//! stream, so runs are deterministic and failures reproduce; there is no
//! shrinking — a failing case reports the case index instead of a minimal
//! counterexample.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize strategy range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty usize strategy range");
        self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
    }
}

/// A bare `usize` is the constant strategy, mirroring proptest's
/// `Into<SizeRange>` acceptance of fixed collection sizes.
impl Strategy for usize {
    type Value = usize;

    fn generate(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`. `size` may be a `Range<usize>`, a
    /// `RangeInclusive<usize>` or a bare `usize` (constant length), mirroring
    /// proptest's `Into<SizeRange>` conversions.
    pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Failure raised by `prop_assert!`; carried through the test body's
/// `Result` return value.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Accepted for API compatibility; this stub never rejects inputs.
    pub max_global_rejects: u32,
    /// Accepted for API compatibility; this stub does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
            max_shrink_iters: 0,
        }
    }
}

/// Executes `test` against `config.cases` generated inputs. Called by the
/// expansion of [`proptest!`]; not part of the public proptest API.
pub fn run_cases<S, F>(config: ProptestConfig, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    // Fixed seed: deterministic inputs across runs and machines.
    let mut rng = TestRng::new(0x4D46_4100_DAC1_9001);
    for case in 0..config.cases {
        if let Err(err) = test(strategy.generate(&mut rng)) {
            panic!("property failed on case {case}/{}: {err}", config.cases);
        }
    }
}

/// Defines property tests:
/// `proptest! { #[test] fn p(x in sx, y in sy) { .. } }`.
///
/// Multiple `pat in strategy` bindings are bundled into one tuple strategy,
/// so each test accepts up to the largest tuple arity implemented above.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, ($($strategy,)+), |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])*
            fn $name($($pat in $strategy),+) $body)*
        }
    };
}

/// Asserts inside a `proptest!` body; fails the case rather than panicking
/// so the runner can report which generated input broke the property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}
