//! Facade crate for the multi-FPGA allocation workspace.
//!
//! Re-exports the member crates under one roof so downstream users (and the
//! `examples/` in this package) can depend on a single crate. See the
//! workspace `README.md` for the crate dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mfa_alloc as alloc;
pub use mfa_cnn as cnn;
pub use mfa_dispatch as dispatch;
pub use mfa_explore as explore;
pub use mfa_gp as gp;
pub use mfa_linalg as linalg;
pub use mfa_linprog as linprog;
pub use mfa_minlp as minlp;
pub use mfa_platform as platform;
pub use mfa_serve as serve;
pub use mfa_sim as sim;
pub use mfa_storenet as storenet;
